//! Shared harness utilities for the paper-reproduction benchmarks.
//!
//! Every figure/table of the paper's evaluation (§7) has a bench target
//! that prints the same rows the paper reports (see DESIGN.md §4):
//!
//! * `fig6a` — FT-Hess (Algorithm 2) vs ScaLAPACK-Hess, no failures;
//! * `fig6b` — same with one injected failure + recovery;
//! * `fig7`  — FT-Hess (Algorithm 3, delayed);
//! * `table1` — residual comparison after failure + recovery;
//! * `model_validation` — §6 flop/storage model vs hardware counters;
//! * `ablations` — NB sweep, grid-shape sweep, variant head-to-head,
//!   recovery-cost breakdown;
//! * `kernels` — microbenchmarks of the dense substrates (plain
//!   `Instant`-timed mains; no criterion, the workspace builds offline).
//!
//! The paper runs N = 1000·g on g×g grids (N up to 96,000 on 96×96). On
//! this simulated machine the default is N = `FT_BENCH_SCALE`·g (scale
//! defaults to 192) on g×g for g ∈ `FT_BENCH_GRIDS` (default `2,3,4,6,8`),
//! with `FT_BENCH_REPS` repetitions (default 2, minimum taken).
//!
//! Benches that feed plots additionally write machine-readable
//! `BENCH_<name>.json` artifacts at the repo root (see [`json`] and
//! EXPERIMENTS.md for the schema).

use ft_dense::counters;
use ft_dense::gen::uniform_entry;
use ft_hess::{failpoint, ft_pdgehrd, Encoded, FtReport, Phase, Variant};
use ft_pblas::{pdgehrd, Desc, DistMatrix};
use ft_runtime::{run_spmd, FaultScript};
use std::time::Instant;

/// One benchmark configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Process rows.
    pub p: usize,
    /// Process columns.
    pub q: usize,
    /// Matrix dimension.
    pub n: usize,
    /// Blocking factor / panel width.
    pub nb: usize,
}

impl Config {
    /// `P·Q`.
    pub fn procs(&self) -> usize {
        self.p * self.q
    }

    /// `"PxQ"`.
    pub fn grid_label(&self) -> String {
        format!("{}x{}", self.p, self.q)
    }
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Repetitions per measurement (`FT_BENCH_REPS`, default 2).
pub fn reps() -> usize {
    env_usize("FT_BENCH_REPS", 2).max(1)
}

/// Default blocking factor (`FT_BENCH_NB`, default 16; the paper uses
/// NB = 80 at its much larger N).
pub fn default_nb() -> usize {
    env_usize("FT_BENCH_NB", 16)
}

/// The grid sweep mimicking the paper's Figure 6/7 x-axis: square grids
/// with N proportional to the grid dimension.
pub fn paper_sweep() -> Vec<Config> {
    let scale = env_usize("FT_BENCH_SCALE", 192);
    let nb = default_nb();
    let grids: Vec<usize> = std::env::var("FT_BENCH_GRIDS")
        .unwrap_or_else(|_| "2,3,4,6,8".into())
        .split(',')
        .filter_map(|t| t.trim().parse().ok())
        .collect();
    grids
        .into_iter()
        .map(|g| {
            // Round N to a multiple of nb (the encoder requires it).
            let n = (scale * g).div_ceil(nb) * nb;
            Config { p: g, q: g, n, nb }
        })
        .collect()
}

/// Flops of the reduction, `10/3·N³` (the count the paper's GFLOPS use).
pub fn hess_flops(n: usize) -> f64 {
    10.0 / 3.0 * (n as f64).powi(3)
}

/// One fault-*intolerant* `pdgehrd` run: `(seconds, counted flops)`.
pub fn time_plain(cfg: Config, seed: u64) -> (f64, u64) {
    let Config { p, q, n, nb } = cfg;
    counters::reset_flops();
    let t = Instant::now();
    run_spmd(p, q, FaultScript::none(), move |ctx| {
        let mut a = DistMatrix::from_global_fn(&ctx, Desc { m: n, n, nb }, |i, j| uniform_entry(seed, i, j));
        let mut tau = vec![0.0; n - 1];
        pdgehrd(&ctx, &mut a, &mut tau);
    });
    (t.elapsed().as_secs_f64(), counters::flops())
}

/// One fault-tolerant run: `(seconds, counted flops, rank-0 report)`.
/// `fail` injects a single failure at `(panel, phase, victim)`.
pub fn time_ft(cfg: Config, seed: u64, variant: Variant, fail: Option<(usize, Phase, usize)>) -> (f64, u64, FtReport) {
    let Config { p, q, n, nb } = cfg;
    let script = match fail {
        Some((panel, phase, victim)) => FaultScript::one(victim, failpoint(panel, phase)),
        None => FaultScript::none(),
    };
    counters::reset_flops();
    let t = Instant::now();
    let reports = run_spmd(p, q, script, move |ctx| {
        let mut enc = Encoded::from_global_fn(&ctx, n, nb, |i, j| uniform_entry(seed, i, j));
        let mut tau = vec![0.0; n - 1];
        ft_pdgehrd(&ctx, &mut enc, variant, &mut tau).expect("within the fault model")
    });
    (t.elapsed().as_secs_f64(), counters::flops(), reports.into_iter().next().unwrap())
}

/// Minimum over `runs` evaluations of `f` — the usual noise filter on a
/// shared machine.
pub fn best_of(runs: usize, mut f: impl FnMut(usize) -> f64) -> f64 {
    (0..runs).map(&mut f).fold(f64::INFINITY, f64::min)
}

/// Number of panel iterations of an `n`/`nb` reduction (for placing
/// failures mid-run).
pub fn panel_count(n: usize, nb: usize) -> usize {
    let mut c = 0;
    let mut k = 0;
    while k + 2 < n {
        k += nb.min(n - 2 - k);
        c += 1;
    }
    c
}

/// Print one Figure 6/7-style row: effective GFLOP/s on both sides, the
/// wall-clock penalty (noisy on the oversubscribed simulator) and the
/// counted-flop penalty (deterministic — the clean trend signal).
pub fn print_overhead_row(cfg: Config, t_plain: f64, t_ft: f64, f_plain: u64, f_ft: u64) {
    let gf_plain = hess_flops(cfg.n) / t_plain / 1e9;
    let gf_ft = hess_flops(cfg.n) / t_ft / 1e9;
    let penalty = (t_ft - t_plain) / t_plain * 100.0;
    let fpenalty = (f_ft as f64 - f_plain as f64) / f_plain as f64 * 100.0;
    println!(
        "{:>6}  {:>7}  {:>10.3}  {:>10.3}  {:>11.2}  {:>11.2}",
        cfg.grid_label(),
        cfg.n,
        gf_plain,
        gf_ft,
        penalty,
        fpenalty
    );
}

/// Header matching [`print_overhead_row`].
pub fn print_overhead_header(ft_name: &str) {
    println!(
        "{:>6}  {:>7}  {:>10}  {:>10}  {:>11}  {:>11}",
        "grid",
        "N",
        "Hess GF/s",
        format!("{ft_name} GF/s"),
        "wall pen %",
        "flop pen %"
    );
}

/// One overhead row as a JSON object (the machine-readable twin of
/// [`print_overhead_row`]).
pub fn overhead_row_json(cfg: Config, t_plain: f64, t_ft: f64, f_plain: u64, f_ft: u64) -> String {
    json::Obj::new()
        .str("grid", &cfg.grid_label())
        .int("n", cfg.n as u64)
        .int("nb", cfg.nb as u64)
        .num("gflops_plain", hess_flops(cfg.n) / t_plain / 1e9)
        .num("gflops_ft", hess_flops(cfg.n) / t_ft / 1e9)
        .num("seconds_plain", t_plain)
        .num("seconds_ft", t_ft)
        .int("flops_plain", f_plain)
        .int("flops_ft", f_ft)
        .num("wall_penalty_pct", (t_ft - t_plain) / t_plain * 100.0)
        .num("flop_penalty_pct", (f_ft as f64 - f_plain as f64) / f_plain as f64 * 100.0)
        .finish()
}

/// Minimal JSON serialization for the `BENCH_*.json` artifacts. The
/// workspace builds offline with zero external crates, so no serde; the
/// schema is flat enough that a string builder is all we need.
pub mod json {
    use std::io::Write as _;
    use std::path::PathBuf;

    /// Incremental JSON object builder. Keys must be plain identifiers
    /// (no escaping is performed on keys); string *values* are escaped.
    #[derive(Debug, Default)]
    pub struct Obj {
        buf: String,
    }

    impl Obj {
        /// Start an empty object.
        pub fn new() -> Self {
            Self::default()
        }

        fn key(&mut self, k: &str) {
            if !self.buf.is_empty() {
                self.buf.push(',');
            }
            self.buf.push('"');
            self.buf.push_str(k);
            self.buf.push_str("\":");
        }

        /// Append a float field (`null` if non-finite — JSON has no NaN).
        pub fn num(mut self, k: &str, v: f64) -> Self {
            self.key(k);
            if v.is_finite() {
                self.buf.push_str(&format!("{v}"));
            } else {
                self.buf.push_str("null");
            }
            self
        }

        /// Append an integer field.
        pub fn int(mut self, k: &str, v: u64) -> Self {
            self.key(k);
            self.buf.push_str(&v.to_string());
            self
        }

        /// Append a string field (value is escaped).
        pub fn str(mut self, k: &str, v: &str) -> Self {
            self.key(k);
            self.buf.push('"');
            for c in v.chars() {
                match c {
                    '"' => self.buf.push_str("\\\""),
                    '\\' => self.buf.push_str("\\\\"),
                    '\n' => self.buf.push_str("\\n"),
                    c if (c as u32) < 0x20 => self.buf.push_str(&format!("\\u{:04x}", c as u32)),
                    c => self.buf.push(c),
                }
            }
            self.buf.push('"');
            self
        }

        /// Append an already-serialized JSON value (nested object/array).
        pub fn raw(mut self, k: &str, v: &str) -> Self {
            self.key(k);
            self.buf.push_str(v);
            self
        }

        /// Close the object.
        pub fn finish(self) -> String {
            format!("{{{}}}", self.buf)
        }
    }

    /// Serialize already-serialized items as a JSON array.
    pub fn array(items: &[String]) -> String {
        format!("[{}]", items.join(","))
    }

    /// Repo-root path of a `BENCH_*.json` artifact (resolved relative to
    /// this crate, so it lands at the root regardless of the bench
    /// binary's working directory).
    pub fn artifact_path(file: &str) -> PathBuf {
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..").join(file)
    }

    /// Write `content` (one serialized JSON value) to the repo-root
    /// artifact `file`, with a trailing newline.
    pub fn write_artifact(file: &str, content: &str) -> std::io::Result<PathBuf> {
        let path = artifact_path(file);
        let mut f = std::fs::File::create(&path)?;
        writeln!(f, "{content}")?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_nonempty_and_divisible() {
        for cfg in paper_sweep() {
            assert!(cfg.n % cfg.nb == 0);
            assert!(cfg.p >= 2 && cfg.q >= 2);
        }
    }

    #[test]
    fn panel_count_matches_loop() {
        assert_eq!(panel_count(12, 2), 5);
        assert_eq!(panel_count(16, 4), 4); // panels at 0, 4, 8 and ragged 12
    }

    #[test]
    fn json_builder_escapes_and_nests() {
        let row = json::Obj::new().str("k", "a\"b\\c").num("x", 1.5).int("n", 7).finish();
        assert_eq!(row, "{\"k\":\"a\\\"b\\\\c\",\"x\":1.5,\"n\":7}");
        let top = json::Obj::new().raw("rows", &json::array(&[row])).num("bad", f64::NAN).finish();
        assert!(top.contains("\"bad\":null"));
        assert!(top.starts_with("{\"rows\":[{"));
    }

    #[test]
    fn artifact_path_is_repo_root() {
        let p = json::artifact_path("BENCH_kernels.json");
        assert!(p.ends_with("../../BENCH_kernels.json"));
    }
}
