//! Failure-path regression: a victim announced at a fail point adjacent to
//! a tree collective must be observed identically by every survivor, and
//! the collectives before and after the failure must still complete with
//! correct (and deterministic) results — the tree's interior forwarding
//! must not smear messages across the fail-point boundary.

use ft_runtime::{run_spmd, FailCheck, FaultScript, PlannedFailure};

#[test]
fn victim_at_tree_collective_boundary_is_seen_consistently() {
    let (p, q) = (4usize, 4usize);
    let victim = 5usize;
    let point = 70u64;
    let checks = run_spmd(p, q, FaultScript::one(victim, point), move |ctx| {
        let w = p * q;

        // A tree collective right before the fail point…
        let mut v = vec![ctx.rank() as f64 + 1.0];
        ctx.allreduce_sum_world(&mut v, 400);
        assert_eq!(v[0], (w * (w + 1) / 2) as f64);

        // …the victim dies here…
        let res = ctx.check_failpoint(point);

        // …and a tree collective right after still completes for everyone
        // (the simulated victim keeps participating as its replacement).
        let mut b = if ctx.rank() == 2 { vec![9.0; 65] } else { vec![] };
        ctx.bcast_world(2, &mut b, 402);
        assert_eq!(b, vec![9.0; 65]);
        res
    });

    for (rank, res) in checks.iter().enumerate() {
        match res {
            FailCheck::Failure { victims, me } => {
                assert_eq!(victims, &vec![victim], "rank {rank} saw wrong victim list");
                assert_eq!(*me, rank == victim, "rank {rank} misidentified itself");
            }
            FailCheck::AllGood => panic!("rank {rank} missed the failure"),
        }
    }
}

#[test]
fn simultaneous_victims_between_collectives_are_seen_identically() {
    // Two victims at one fail point sandwiched between a reduce and a
    // broadcast; every rank must report the same (announcement-ordered)
    // victim list even though tree traffic surrounds the point.
    let script = FaultScript::new(vec![PlannedFailure { victim: 1, point: 9 }, PlannedFailure { victim: 6, point: 9 }]);
    let out = run_spmd(2, 4, script, |ctx| {
        let mut v = vec![1.0; 8];
        ctx.reduce_sum_col(0, &mut v, 500);
        let res = ctx.check_failpoint(9);
        let mut b = vec![ctx.myrow() as f64];
        ctx.bcast_row(0, &mut b, 502);
        assert_eq!(b, vec![ctx.myrow() as f64]);
        match res {
            FailCheck::Failure { mut victims, .. } => {
                victims.sort_unstable();
                victims
            }
            FailCheck::AllGood => panic!("missed failure"),
        }
    });
    for v in &out {
        assert_eq!(v, &vec![1, 6], "victim lists diverged across survivors");
    }
}
