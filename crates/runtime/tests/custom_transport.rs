//! The pluggable-communicator seam: run the full SPMD stack over a custom
//! [`Transport`] implementation (here, an instrumented wrapper around the
//! default mpsc fabric) and check that collectives behave identically.

use ft_runtime::{run_spmd_with, CommError, FaultScript, MpscTransport, Msg, Transport};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Counts every message crossing the wire, fabric-wide.
struct CountingTransport {
    inner: MpscTransport,
    sends: Arc<AtomicU64>,
}

impl Transport for CountingTransport {
    fn rank(&self) -> usize {
        self.inner.rank()
    }
    fn world_size(&self) -> usize {
        self.inner.world_size()
    }
    fn send(&self, dst: usize, msg: Msg) {
        self.sends.fetch_add(1, Ordering::Relaxed);
        self.inner.send(dst, msg);
    }
    fn recv(&self, timeout: Duration) -> Result<Msg, CommError> {
        self.inner.recv(timeout)
    }
    fn close(&self) {
        self.inner.close()
    }
    fn reopen(&self) {
        self.inner.reopen()
    }
    fn is_peer_dead(&self, peer: usize) -> bool {
        self.inner.is_peer_dead(peer)
    }
}

#[test]
fn spmd_runs_unchanged_over_a_custom_transport() {
    let (p, q) = (2usize, 3usize);
    let sends = Arc::new(AtomicU64::new(0));
    let transports: Vec<Box<dyn Transport>> = MpscTransport::fabric(p * q)
        .into_iter()
        .map(|inner| Box::new(CountingTransport { inner, sends: Arc::clone(&sends) }) as Box<dyn Transport>)
        .collect();

    let out = run_spmd_with(p, q, FaultScript::none(), transports, |ctx| {
        let mut v = vec![ctx.rank() as f64];
        ctx.allreduce_sum_world(&mut v, 1);
        if ctx.rank() == 0 {
            ctx.send(5, 2, &[7.0]);
        }
        if ctx.rank() == 5 {
            assert_eq!(ctx.recv(0, 2), vec![7.0]);
        }
        v[0]
    });
    assert_eq!(out, vec![15.0; 6]);

    // The wrapper saw every message: 5 reduce partials + 5 broadcast
    // forwards + 1 p2p.
    assert_eq!(sends.load(Ordering::Relaxed), 11);
}
