//! Equivalence and determinism regression tests for the tree collectives.
//!
//! * Tree broadcast/reduce/all-reduce must produce the same results as a
//!   straightforward linear (root-loop) reference on every grid from 1×1
//!   to 4×4. The reduce comparison uses integer-valued data, where both
//!   association orders are exact — floating-point association is covered
//!   separately by the bitwise run-to-run test below.
//! * Repeated runs on association-sensitive float data must agree
//!   **bitwise**: the tree shape is fixed, so recovery replay stays
//!   bit-exact.

use ft_runtime::{run_spmd, Ctx, FaultScript};

/// Reference linear broadcast: root sends a full copy to every member.
fn linear_bcast(ctx: &Ctx, members: &[usize], root: usize, data: &mut Vec<f64>, tag: u64) {
    if ctx.rank() == root {
        for &m in members {
            if m != root {
                ctx.send(m, tag, data);
            }
        }
    } else if members.contains(&ctx.rank()) {
        *data = ctx.recv(root, tag);
    }
}

/// Reference linear reduction: root receives every member's contribution
/// and sums them in member order.
fn linear_reduce(ctx: &Ctx, members: &[usize], root: usize, data: &mut [f64], tag: u64) {
    if ctx.rank() == root {
        let mine = data.to_vec();
        data.fill(0.0);
        for &m in members {
            let part = if m == root { mine.clone() } else { ctx.recv(m, tag) };
            for (d, s) in data.iter_mut().zip(&part) {
                *d += s;
            }
        }
    } else if members.contains(&ctx.rank()) {
        ctx.send(root, tag, data);
    }
}

/// Integer-valued per-rank payload: sums are exact under any association,
/// so tree and linear results must be identical to the last bit.
fn payload(rank: usize, len: usize) -> Vec<f64> {
    (0..len).map(|i| (rank * 31 + i * 7 + 1) as f64).collect()
}

#[test]
fn tree_broadcast_matches_linear_reference_on_all_grids() {
    for p in 1..=4usize {
        for q in 1..=4usize {
            let w = p * q;
            for root in [0, w / 2, w - 1] {
                run_spmd(p, q, FaultScript::none(), move |ctx| {
                    let world: Vec<usize> = (0..w).collect();
                    let mut tree = payload(ctx.rank(), 9);
                    let mut lin = tree.clone();
                    ctx.bcast_world(root, &mut tree, 100);
                    linear_bcast(&ctx, &world, root, &mut lin, 102);
                    assert_eq!(tree, lin, "{p}x{q} world bcast from {root} diverged on rank {}", ctx.rank());

                    // Row/column broadcasts from the root's coordinates.
                    let (rp, rq) = ctx.grid().coords_of(root);
                    let mut tree = payload(ctx.rank(), 5);
                    let mut lin = tree.clone();
                    ctx.bcast_row(rq, &mut tree, 104);
                    linear_bcast(&ctx, &ctx.row_ranks(), ctx.grid().rank_of(ctx.myrow(), rq), &mut lin, 106);
                    assert_eq!(tree, lin, "{p}x{q} row bcast diverged");

                    let mut tree = payload(ctx.rank(), 5);
                    let mut lin = tree.clone();
                    ctx.bcast_col(rp, &mut tree, 108);
                    linear_bcast(&ctx, &ctx.col_ranks(), ctx.grid().rank_of(rp, ctx.mycol()), &mut lin, 110);
                    assert_eq!(tree, lin, "{p}x{q} col bcast diverged");
                });
            }
        }
    }
}

#[test]
fn tree_reduce_matches_linear_reference_on_all_grids() {
    for p in 1..=4usize {
        for q in 1..=4usize {
            let w = p * q;
            for root in [0, w - 1] {
                run_spmd(p, q, FaultScript::none(), move |ctx| {
                    let world: Vec<usize> = (0..w).collect();
                    let (rp, rq) = ctx.grid().coords_of(root);

                    // World all-reduce vs linear reduce + linear bcast.
                    let mut tree = payload(ctx.rank(), 7);
                    let mut lin = tree.clone();
                    ctx.allreduce_sum_world(&mut tree, 200);
                    linear_reduce(&ctx, &world, 0, &mut lin, 202);
                    linear_bcast(&ctx, &world, 0, &mut lin, 204);
                    assert_eq!(tree, lin, "{p}x{q} world allreduce diverged on rank {}", ctx.rank());

                    // Row reduce: compare at the root column only (non-root
                    // buffers are scratch in both implementations).
                    let mut tree = payload(ctx.rank(), 4);
                    let mut lin = tree.clone();
                    ctx.reduce_sum_row(rq, &mut tree, 206);
                    linear_reduce(&ctx, &ctx.row_ranks(), ctx.grid().rank_of(ctx.myrow(), rq), &mut lin, 208);
                    if ctx.mycol() == rq {
                        assert_eq!(tree, lin, "{p}x{q} row reduce diverged");
                    }

                    // Column reduce likewise.
                    let mut tree = payload(ctx.rank(), 4);
                    let mut lin = tree.clone();
                    ctx.reduce_sum_col(rp, &mut tree, 210);
                    linear_reduce(&ctx, &ctx.col_ranks(), ctx.grid().rank_of(rp, ctx.mycol()), &mut lin, 212);
                    if ctx.myrow() == rp {
                        assert_eq!(tree, lin, "{p}x{q} col reduce diverged");
                    }
                });
            }
        }
    }
}

#[test]
fn repeated_runs_are_bit_identical_on_association_sensitive_data() {
    // Float data where summation order changes the rounding: the fixed
    // tree shape must still give the same bits on every run, on every
    // grid shape it will later be asked to replay on.
    for (p, q) in [(1usize, 1usize), (2, 2), (3, 2), (2, 4), (4, 4)] {
        let run = || {
            run_spmd(p, q, FaultScript::none(), |ctx| {
                let mut v = vec![1.0 / (ctx.rank() as f64 + 3.0), 1e16, -1e16, std::f64::consts::PI];
                ctx.allreduce_sum_world(&mut v, 300);
                ctx.allreduce_sum_row(&mut v, 302);
                ctx.allreduce_sum_col(&mut v, 304);
                let mut w = v.clone();
                ctx.reduce_sum_row(0, &mut w, 306);
                ctx.bcast_row(0, &mut w, 308);
                v.extend_from_slice(&w);
                v
            })
        };
        let a = run();
        let b = run();
        for (ra, rb) in a.iter().zip(&b) {
            for (xa, xb) in ra.iter().zip(rb) {
                assert_eq!(xa.to_bits(), xb.to_bits(), "{p}x{q}: nondeterministic tree collective");
            }
        }
    }
}
