//! Stress tests of the communication substrate: long randomized sequences
//! of mixed collectives and point-to-point traffic, checked against a
//! sequential oracle. The SPMD protocols upstairs (PBLAS, the ABFT driver)
//! assume exactly the guarantees exercised here — deterministic reduction
//! order, per-(src, tag) FIFO, and collective isolation between rows and
//! columns.

use ft_runtime::{run_spmd, FaultScript};

/// A deterministic pseudo-random stream identical on every process.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

#[test]
fn randomized_collective_sequences_match_oracle() {
    for (p, q, seed) in [(2usize, 3usize, 1u64), (3, 2, 2), (2, 2, 3), (4, 2, 4)] {
        run_spmd(p, q, FaultScript::none(), move |ctx| {
            let w = p * q;
            let mut rng = Lcg(seed); // same stream everywhere: same op sequence
                                     // Each process carries a value; the oracle tracks all of them.
            let mut mine = vec![ctx.rank() as f64 + 1.0];
            let mut oracle: Vec<f64> = (0..w).map(|r| r as f64 + 1.0).collect();

            for step in 0..200 {
                let tag = 5000 + step as u64 * 4;
                match rng.next() % 4 {
                    0 => {
                        // World all-reduce: everyone ends up with the sum.
                        ctx.allreduce_sum_world(&mut mine, tag);
                        let total: f64 = oracle.iter().sum();
                        oracle = vec![total; w];
                    }
                    1 => {
                        // Row all-reduce.
                        ctx.allreduce_sum_row(&mut mine, tag);
                        let mut next = vec![0.0; w];
                        for row in 0..p {
                            let s: f64 = (0..q).map(|c| oracle[row * q + c]).sum();
                            for c in 0..q {
                                next[row * q + c] = s;
                            }
                        }
                        oracle = next;
                    }
                    2 => {
                        // Column all-reduce.
                        ctx.allreduce_sum_col(&mut mine, tag);
                        let mut next = vec![0.0; w];
                        for col in 0..q {
                            let s: f64 = (0..p).map(|r| oracle[r * q + col]).sum();
                            for r in 0..p {
                                next[r * q + col] = s;
                            }
                        }
                        oracle = next;
                    }
                    _ => {
                        // Broadcast from a pseudo-random root.
                        let root = (rng.next() % w as u64) as usize;
                        ctx.bcast_world(root, &mut mine, tag);
                        let v = oracle[root];
                        oracle = vec![v; w];
                    }
                }
                assert_eq!(mine[0], oracle[ctx.rank()], "{p}x{q} seed {seed}: step {step} diverged on rank {}", ctx.rank());
                // Keep magnitudes bounded.
                if mine[0].abs() > 1e12 {
                    mine[0] = (ctx.rank() % 7) as f64;
                    for (r, o) in oracle.iter_mut().enumerate() {
                        *o = (r % 7) as f64;
                    }
                }
            }
        });
    }
}

#[test]
fn heavy_out_of_order_p2p_traffic() {
    // Every pair exchanges many messages over interleaved tags; receivers
    // drain them in a scrambled but per-tag-FIFO order.
    run_spmd(2, 2, FaultScript::none(), |ctx| {
        let w = 4;
        let me = ctx.rank();
        const MSGS: usize = 50;
        for dst in 0..w {
            if dst == me {
                continue;
            }
            for i in 0..MSGS {
                let tag = 6000 + (i % 3) as u64; // three interleaved tag streams
                ctx.send(dst, tag, &[me as f64, i as f64]);
            }
        }
        // Receive from every peer, highest tag stream first (stresses the
        // out-of-order stash), checking FIFO within each stream.
        for src in 0..w {
            if src == me {
                continue;
            }
            for tagoff in (0..3).rev() {
                let tag = 6000 + tagoff as u64;
                let mut last = -1.0;
                let expect = MSGS / 3 + usize::from(tagoff < MSGS % 3);
                for _ in 0..expect {
                    let msg = ctx.recv(src, tag);
                    assert_eq!(msg[0] as usize, src);
                    assert!(msg[1] > last, "FIFO violated within (src, tag)");
                    last = msg[1];
                }
            }
        }
    });
}

#[test]
fn reductions_are_bitwise_deterministic_across_runs() {
    // The deterministic member-order reduction is what makes recovery
    // replay bit-exact; verify two independent runs agree bitwise.
    let run = || {
        run_spmd(2, 3, FaultScript::none(), |ctx| {
            // Values chosen to make floating-point order matter.
            let mut v = vec![1.0 / (ctx.rank() as f64 + 3.0), 1e16, -1e16];
            ctx.allreduce_sum_world(&mut v, 7000);
            ctx.allreduce_sum_row(&mut v, 7002);
            ctx.allreduce_sum_col(&mut v, 7004);
            v
        })
    };
    let a = run();
    let b = run();
    for (x, y) in a.iter().zip(&b) {
        for (xa, yb) in x.iter().zip(y) {
            assert_eq!(xa.to_bits(), yb.to_bits(), "nondeterministic reduction");
        }
    }
}
