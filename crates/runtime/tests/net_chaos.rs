//! Network-chaos storm battery: every injected wire fault the
//! [`NetChaosScript`] grammar can express, fired against real localhost TCP
//! fabrics, with one invariant throughout — **delivery is exactly-once,
//! in-order, and bitwise identical to the fault-free run, or the failure is
//! a typed error; never a hang, never silent corruption.**
//!
//! The battery is table-driven: each case is a `(name, spec-per-rank)` pair
//! run through the same all-to-all exchange, so adding a storm is one line.
//! Counter-level assertions (duplicates suppressed, CRC rejections, session
//! resumes) live in the focused tests below the table.

use ft_runtime::{CommError, Msg, NetChaosScript, NetFault, TcpTransport, Transport};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn msg(src: usize, wire: u64, vals: &[f64]) -> Msg {
    Msg { src, wire, epoch: 0, payload: Arc::from(vals) }
}

/// Deterministic frame body: mixes the source rank, the frame index, and an
/// irrational tail so any bit flip or cross-frame mixup breaks the bitwise
/// comparison.
fn body(src: usize, i: usize) -> Vec<f64> {
    vec![
        i as f64,
        (src * 10_000 + i) as f64,
        ((i + 1) as f64).sqrt() * (src + 2) as f64,
    ]
}

/// All-to-all exchange under chaos: every rank sends `frames` messages to
/// every other rank, then receives and checks each source's stream for
/// exact order and bitwise payload equality. Returns the endpoints so the
/// caller can inspect counters. Panics (with the case name) on any loss,
/// reorder, corruption, or hang.
fn storm(name: &str, world: usize, frames: usize, spec_of: impl Fn(usize) -> Option<String>) -> Vec<TcpTransport> {
    let eps = TcpTransport::fabric_localhost_with(world, |c| {
        c.hb_interval = Duration::from_millis(40);
        // A storm slows everyone down; nobody dies. Keep the death
        // threshold far away so slow is never misread as dead.
        c.hb_miss_limit = 500;
        if let Some(s) = spec_of(c.rank) {
            c.net_chaos = NetChaosScript::parse(&s).unwrap_or_else(|e| panic!("case {name}: bad spec: {e}"));
        }
    })
    .unwrap_or_else(|e| panic!("case {name}: fabric: {e}"));
    let name = name.to_string();
    let handles: Vec<_> = eps
        .into_iter()
        .map(|ep| {
            let name = name.clone();
            std::thread::spawn(move || {
                let me = ep.rank();
                let world = ep.world_size();
                for i in 0..frames {
                    for dst in 0..world {
                        if dst != me {
                            ep.send(dst, msg(me, 5, &body(me, i)));
                        }
                    }
                }
                let mut next = vec![0usize; world];
                for _ in 0..frames * (world - 1) {
                    let m = ep
                        .recv(Duration::from_secs(60))
                        .unwrap_or_else(|e| panic!("case {name}: rank {me} starved ({e}) — a frame was lost for good"));
                    let i = next[m.src];
                    next[m.src] += 1;
                    let want = body(m.src, i);
                    assert_eq!(m.payload.len(), want.len(), "case {name}: frame size changed on the wire");
                    for (got, exp) in m.payload.iter().zip(&want) {
                        assert_eq!(
                            got.to_bits(),
                            exp.to_bits(),
                            "case {name}: stream {}→{me} delivered wrong bits at index {i}",
                            m.src
                        );
                    }
                }
                // The storm must never escalate to a death verdict: every
                // fault here is recoverable by construction.
                for peer in 0..world {
                    if peer != me {
                        assert!(!ep.is_peer_dead(peer), "case {name}: rank {me} declared live peer {peer} dead");
                    }
                }
                ep
            })
        })
        .collect();
    handles
        .into_iter()
        .map(|h| h.join().unwrap_or_else(|_| panic!("case {name}: a rank panicked")))
        .collect()
}

/// The storm table: ≥16 cases spanning every fault kind, alone and mixed,
/// one-sided and symmetric, at two and three ranks. Exact delivery under
/// each is the acceptance bar of DESIGN.md §16.
#[test]
fn storm_battery_delivers_bitwise_exact_under_every_fault_mix() {
    type Case = (&'static str, usize, usize, fn(usize) -> Option<String>);
    let cases: &[Case] = &[
        ("drop-light", 2, 48, |r| (r == 0).then(|| "1:drop=0.3".into())),
        ("drop-light-reseeded", 2, 48, |r| (r == 0).then(|| "2:drop=0.3".into())),
        ("drop-heavy", 2, 32, |r| (r == 0).then(|| "3:drop=0.6".into())),
        ("drop-symmetric", 2, 32, |_| Some("5:drop=0.4".into())),
        ("delay-half", 2, 32, |r| (r == 0).then(|| "8:delay=0.5@20".into())),
        ("delay-every-frame", 2, 24, |r| (r == 0).then(|| "13:delay=1.0@10".into())),
        ("dup-every-frame", 2, 48, |r| (r == 0).then(|| "21:dup=1.0".into())),
        ("dup-half-symmetric", 2, 48, |_| Some("34:dup=0.5".into())),
        ("reorder-half", 2, 48, |r| (r == 0).then(|| "2:reorder=0.5".into())),
        ("reorder-every-frame", 2, 32, |r| (r == 0).then(|| "3:reorder=1.0".into())),
        ("corrupt-light", 2, 48, |r| (r == 0).then(|| "5:corrupt=0.3".into())),
        ("corrupt-heavy", 2, 24, |r| (r == 0).then(|| "8:corrupt=0.6".into())),
        ("reset-storm", 2, 32, |r| (r == 0).then(|| "7:reset=0.4".into())),
        ("reset-symmetric", 2, 32, |_| Some("11:reset=0.2".into())),
        ("mixed-lossy", 2, 40, |r| (r == 0).then(|| "17:drop=0.2,dup=0.3,reorder=0.3".into())),
        ("mixed-hostile", 2, 32, |r| (r == 0).then(|| "19:corrupt=0.2,reset=0.2".into())),
        ("kitchen-sink-symmetric", 2, 32, |_| {
            Some("23:drop=0.15,delay=0.2@10,dup=0.2,reorder=0.2,corrupt=0.15,reset=0.1".into())
        }),
        ("three-rank-crossfire", 3, 24, |_| Some("37:drop=0.2,reorder=0.3,corrupt=0.1".into())),
        ("partition-heals", 2, 32, |r| (r == 0).then(|| "29:part=0-1@150+400".into())),
    ];
    assert!(cases.len() >= 16, "the battery must cover at least 16 storms");
    for (name, world, frames, spec) in cases {
        storm(name, *world, *frames, spec);
    }
}

/// Poll a counter until it reaches `want` or a 5 s deadline: the storm only
/// proves *delivery*; trailing duplicates/rejections may still be in flight
/// on the reader thread when the exchange completes.
fn wait_counter(read: impl Fn() -> u64, want: u64) -> u64 {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let got = read();
        if got >= want || Instant::now() > deadline {
            return got;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Strict request/echo exchange with chaos on the 0→1 direction: at most
/// one data frame in flight at a time, so every sequenced frame's first
/// transmission hits a live, parser-aligned stream and its injection draw
/// is observable in the receiver's counters (a pipelined storm can discard
/// frames unparsed when an earlier rejection already condemned the
/// stream). One warmup exchange precedes the `frames` counted ones: the
/// first sequence may ride the connection-establishing replay, which is
/// injection-exempt by design.
fn lockstep(name: &'static str, frames: usize, spec: &str) -> Vec<TcpTransport> {
    let mut eps = TcpTransport::fabric_localhost_with(2, |c| {
        c.hb_interval = Duration::from_millis(40);
        c.hb_miss_limit = 500;
        if c.rank == 0 {
            c.net_chaos = NetChaosScript::parse(spec).unwrap_or_else(|e| panic!("case {name}: bad spec: {e}"));
        }
    })
    .unwrap_or_else(|e| panic!("case {name}: fabric: {e}"));
    let b = eps.remove(1);
    let a = eps.remove(0);
    let echo = std::thread::spawn(move || {
        for i in 0..=frames {
            let m = b
                .recv(Duration::from_secs(60))
                .unwrap_or_else(|e| panic!("case {name}: echo rank starved ({e}) — a frame was lost for good"));
            let want = body(0, i);
            assert_eq!(m.payload.len(), want.len(), "case {name}: frame size changed on the wire");
            for (got, exp) in m.payload.iter().zip(&want) {
                assert_eq!(got.to_bits(), exp.to_bits(), "case {name}: corrupted payload delivered at index {i}");
            }
            b.send(0, msg(1, 6, &[i as f64]));
        }
        b
    });
    for i in 0..=frames {
        a.send(1, msg(0, 5, &body(0, i)));
        let m = a
            .recv(Duration::from_secs(60))
            .unwrap_or_else(|e| panic!("case {name}: echo for frame {i} never came back ({e})"));
        assert_eq!(m.payload[0].to_bits(), (i as f64).to_bits(), "case {name}: echoes out of order");
    }
    let b = echo.join().unwrap_or_else(|_| panic!("case {name}: echo rank panicked"));
    vec![a, b]
}

/// Every injected duplicate must be suppressed by the receiver's sequence
/// check — counted, never delivered (the battery already proved the
/// "never delivered" half bitwise). Lockstep keeps the stream alive the
/// whole way, so with `dup=1.0` each counted sequence yields exactly one
/// suppressed duplicate.
#[test]
fn injected_duplicates_are_counted_by_the_receiver() {
    let frames = 48;
    let eps = lockstep("dup-counted", frames, "21:dup=1.0");
    let dup = wait_counter(|| eps[1].stats().peers[0].dup_suppressed, frames as u64);
    assert!(dup >= frames as u64, "dup=1.0 duplicated {frames} frames but only {dup} were suppressed");
}

/// CRC detection is total: replay the deterministic schedule to count how
/// many first transmissions were corrupted, and require at least that many
/// typed CRC rejections. The header carries its own CRC over bytes 0..40
/// (checked before the length prefix is trusted) and the frame CRC covers
/// the rest, so *every* single-bit flip — length field included — lands in
/// `crc_rejects`, never in a desynchronized stream.
#[test]
fn injected_corruption_is_always_detected_by_crc() {
    let frames = 40;
    let spec = "5:corrupt=0.3";
    let eps = lockstep("corrupt-counted", frames, spec);
    let script = NetChaosScript::parse(spec).unwrap();
    // The warmup exchange holds sequence 1; counted draws are 2..=frames+1.
    let injected = (2..=frames as u64 + 1)
        .filter(|&s| script.decide(0, 1, s) == Some(NetFault::Corrupt))
        .count() as u64;
    assert!(injected > 0, "seed 5 at p=0.3 must corrupt something over {frames} frames");
    let rejected = wait_counter(|| eps[1].stats().peers[0].crc_rejects, injected);
    assert!(
        rejected >= injected,
        "{injected} frames were corrupted but only {rejected} CRC rejections were recorded — corruption slipped through"
    );
}

/// Scripted connection resets force the session-resume handshake; the
/// sender must record the resumes and the retransmitted window.
#[test]
fn resets_force_session_resume_with_replay() {
    let eps = storm("reset-counted", 2, 32, |r| (r == 0).then(|| "7:reset=0.4".into()));
    let c = &eps[0].stats().peers[1];
    assert!(c.resumes >= 1, "reset=0.4 over 32 frames never resumed a session");
    assert!(c.retransmits >= 1, "a resumed session must replay its unacknowledged window");
}

/// A partition that heals inside the liveness budget is a slow network,
/// not a death: delivery completes (checked by the battery case) and no
/// rank is marked dead afterwards — here we additionally require the
/// healed link to have actually moved frames in both directions.
#[test]
fn healed_partition_resumes_both_directions() {
    let frames = 24;
    let eps = storm("partition-heal-counted", 2, frames, |_| Some("43:part=0-1@100+300,part=1-0@100+300".into()));
    for ep in &eps {
        let peer = 1 - ep.rank();
        let c = &ep.stats().peers[peer];
        assert!(
            c.frames_rx >= frames as u64,
            "rank {} received only {} frames from {peer} after the heal",
            ep.rank(),
            c.frames_rx
        );
    }
}

/// An unhealed partition must surface as a *typed* timeout on the starved
/// side, inside the configured budget — and the blackholed sender must keep
/// accepting sends without blocking (fail-stop semantics, not backpressure
/// into the solver).
#[test]
fn permanent_partition_is_a_typed_timeout_not_a_hang() {
    let mut eps = TcpTransport::fabric_localhost_with(2, |c| {
        c.hb_interval = Duration::from_millis(40);
        c.hb_miss_limit = 500;
        if c.rank == 0 {
            c.net_chaos = NetChaosScript::parse("41:part=0-1@0").unwrap();
        }
    })
    .unwrap();
    let b = eps.remove(1);
    let a = eps.remove(0);
    let t0 = Instant::now();
    for i in 0..16 {
        a.send(1, msg(0, 5, &body(0, i)));
    }
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "send into a blackhole blocked the caller for {:?}",
        t0.elapsed()
    );
    let t1 = Instant::now();
    match b.recv(Duration::from_millis(1500)) {
        Err(CommError::Timeout) => {}
        other => panic!("expected a typed timeout across the partition, got {other:?}"),
    }
    assert!(t1.elapsed() < Duration::from_secs(10), "typed timeout took {:?} — effectively a hang", t1.elapsed());
    // The reverse direction is NOT partitioned: rank 1 → rank 0 still flows.
    b.send(0, msg(1, 5, &body(1, 0)));
    let m = a
        .recv(Duration::from_secs(20))
        .expect("unpartitioned direction must still deliver");
    assert_eq!(m.src, 1);
}

/// Head-of-line delays just under the suspicion threshold must never
/// escalate past "suspected": the grace protocol rescinds, nobody dies,
/// and delivery stays exact. This is the slow-vs-dead discrimination
/// contract at the transport level.
#[test]
fn sub_grace_delays_are_suspected_at_most_never_fatal() {
    let frames = 16;
    // hb 40 ms, delay 70 ms ≈ 1.75 × hb: inside the 2×hb suspicion window
    // per frame, but stacked delays starve the link well past one beat.
    let eps = storm("sub-grace-delay", 2, frames, |r| (r == 0).then(|| "47:delay=1.0@70".into()));
    for ep in &eps {
        let peer = 1 - ep.rank();
        assert!(!ep.is_peer_dead(peer), "a delayed-but-alive peer was declared dead");
    }
}
