//! Failure detection and agreement — the substrate the paper assumes from
//! FT-MPI (§5) and that ULFM spells out as `revoke` + `agree`.
//!
//! One [`Detector`] is shared by every process of a world. It is the single
//! source of truth about failures and plays three roles:
//!
//! 1. **Notice board** (quiescent failures): scripted victims announce
//!    themselves at a fail point; survivors read the board between two
//!    barriers, so everyone observes the same ordered prefix. This is the
//!    cooperative path [`crate::Ctx::check_failpoint`] has always used —
//!    the board just lives here now.
//! 2. **Revocation** (asynchronous failures): a chaos victim *revokes* the
//!    world as it dies. Every communication call and every barrier checks
//!    the revocation flag; on observing it, the call raises an
//!    [`Interrupt`] unwind instead of returning garbage. Blocked peers are
//!    woken by control messages and by the revocable barrier's condvar.
//! 3. **Agreement**: after unwinding, every process (victims' replacements
//!    included) calls `agree`, a full-world rendezvous that snapshots the
//!    cumulative victim set of the current round, bumps the communication
//!    epoch (so straggler messages from the aborted epoch are discarded),
//!    and clears the revocation flag. All participants leave with an
//!    identical, sorted victim set — the ULFM `MPI_Comm_agree` analogue.
//!
//! Victims accumulate in a *round* that spans nested aborts: if a second
//! failure strikes during recovery from a first, the next agreement returns
//! the union, which is what makes re-entrant recovery converge. The round
//! is cleared when the algorithm *commits* a fail-point boundary (recovery
//! done, protection re-armed).

use std::collections::BTreeSet;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Why a communication call unwound. Carried inside [`Interrupt`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterruptReason {
    /// This process is the victim: the chaos injector killed it.
    Died,
    /// A peer died; the world is revoked and agreement must run.
    Revoked,
}

/// Typed unwind payload raised by communication calls when the world is
/// revoked (or by the chaos injector on the victim itself). Catch it with
/// [`catch_interrupt`]; any other panic payload is propagated unchanged.
#[derive(Debug, Clone, Copy)]
pub struct Interrupt {
    /// What happened.
    pub reason: InterruptReason,
    /// The rank on which the interrupt was raised.
    pub rank: usize,
}

/// Raise an [`Interrupt`] unwind on the current thread.
pub(crate) fn raise_interrupt(reason: InterruptReason, rank: usize) -> ! {
    std::panic::panic_any(Interrupt { reason, rank })
}

/// Run `f`, catching an [`Interrupt`] unwind. Genuine panics (assertion
/// failures, bugs) are re-raised — only failure interrupts are converted
/// into an `Err`.
pub fn catch_interrupt<R>(f: impl FnOnce() -> R) -> Result<R, Interrupt> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(v) => Ok(v),
        Err(payload) => match payload.downcast::<Interrupt>() {
            Ok(i) => Err(*i),
            Err(other) => resume_unwind(other),
        },
    }
}

/// Install a panic hook that silences [`Interrupt`] unwinds (they are
/// control flow, not errors) and typed [`CommError`] unwinds (the
/// partition verdict already printed its one-line diagnosis; the default
/// hook's backtrace banner would bury it) while delegating everything
/// else to the previously installed hook. Idempotent; called when chaos
/// injection or a distributed fabric is actually in play so plain
/// shared-memory runs keep the pristine default hook.
pub(crate) fn install_quiet_interrupt_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let quiet = info.payload().downcast_ref::<Interrupt>().is_some()
                || info.payload().downcast_ref::<crate::transport::CommError>().is_some();
            if !quiet {
                prev(info);
            }
        }));
    });
}

/// Result of one agreement round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureAgreement {
    /// Sorted union of every victim detected since the last committed
    /// boundary — identical on all participants.
    pub victims: Vec<usize>,
    /// The new communication epoch. Messages stamped with an older epoch
    /// are stragglers from an aborted attempt and must be dropped.
    pub epoch: u64,
}

#[derive(Debug, Default)]
struct DetectorState {
    /// Ordered announcement board (scripted, quiescent failures).
    board: Vec<usize>,
    /// Cumulative victims of the current round (scripted + chaos).
    round: BTreeSet<usize>,
    /// Victims revoked since the last agreement. A boundary commit may race
    /// a fresh revocation (the committer hasn't observed it yet), and must
    /// not wipe a victim nobody has agreed on — these survive the commit.
    pending_revoked: BTreeSet<usize>,
    /// World revoked: survivors must abort to agreement.
    revoked: bool,
    /// Communication epoch; bumped by each agreement.
    epoch: u64,
    /// Agreement rendezvous bookkeeping (generation-counted barrier).
    agree_count: usize,
    agree_gen: u64,
    agree_victims: Vec<usize>,
    /// Revocable-barrier bookkeeping.
    bar_count: usize,
    bar_gen: u64,
    /// Highest committed boundary id + 1 (0 = nothing committed).
    committed: u64,
}

/// Shared failure detector for one world. See the module docs.
#[derive(Debug, Default)]
pub(crate) struct Detector {
    state: Mutex<DetectorState>,
    cv: Condvar,
    /// Lock-free mirror of `state.board.len()` for the empty-fast-path.
    board_len: AtomicUsize,
    /// Lock-free mirror of `state.revoked`.
    revoked: AtomicBool,
    /// `true` while the current round has uncommitted victims — lets
    /// `commit` skip the lock entirely on the fault-free path.
    dirty: AtomicBool,
}

impl Detector {
    fn lock(&self) -> std::sync::MutexGuard<'_, DetectorState> {
        self.state.lock().expect("detector poisoned")
    }

    /// Quiescent announcement: a scripted victim posts itself on the board
    /// (and into the round) at a fail point.
    pub(crate) fn announce(&self, victim: usize) {
        let mut st = self.lock();
        st.board.push(victim);
        st.round.insert(victim);
        self.board_len.store(st.board.len(), Ordering::Release);
        self.dirty.store(true, Ordering::Release);
    }

    /// Board entries from `from` onward (callers keep their own cursor).
    pub(crate) fn board_from(&self, from: usize) -> Vec<usize> {
        let st = self.lock();
        st.board[from.min(st.board.len())..].to_vec()
    }

    /// Current board length, without taking the lock.
    pub(crate) fn board_len(&self) -> usize {
        self.board_len.load(Ordering::Acquire)
    }

    /// Asynchronous death: revoke the world. Wakes barrier/agreement
    /// waiters so nobody sleeps through the failure.
    pub(crate) fn revoke(&self, victim: usize) {
        let mut st = self.lock();
        st.round.insert(victim);
        st.pending_revoked.insert(victim);
        st.revoked = true;
        self.revoked.store(true, Ordering::Release);
        self.dirty.store(true, Ordering::Release);
        self.cv.notify_all();
    }

    /// Whether the world is currently revoked (lock-free).
    pub(crate) fn is_revoked(&self) -> bool {
        self.revoked.load(Ordering::Acquire)
    }

    /// Snapshot of the current round's victims (diagnostics).
    pub(crate) fn current_victims(&self) -> Vec<usize> {
        self.lock().round.iter().copied().collect()
    }

    /// Full-world agreement rendezvous. Blocks until all `world` processes
    /// arrive, then atomically: snapshots the round's victims, bumps the
    /// epoch, clears the revocation flag. Everyone returns the same
    /// [`FailureAgreement`].
    pub(crate) fn agree(&self, world: usize) -> FailureAgreement {
        let mut st = self.lock();
        st.agree_count += 1;
        if st.agree_count == world {
            st.agree_count = 0;
            st.agree_gen += 1;
            st.epoch += 1;
            st.revoked = false;
            self.revoked.store(false, Ordering::Release);
            st.agree_victims = st.round.iter().copied().collect();
            // Everything revoked so far is now part of an agreement; only
            // revocations arriving after this point must survive commits.
            st.pending_revoked.clear();
            self.cv.notify_all();
        } else {
            let gen = st.agree_gen;
            while st.agree_gen == gen {
                st = self.cv.wait(st).expect("detector poisoned");
            }
        }
        FailureAgreement { victims: st.agree_victims.clone(), epoch: st.epoch }
    }

    /// Revocable barrier: all `world` processes must arrive for anyone to
    /// pass. If the world is revoked before this generation completes,
    /// every waiter backs out with `Err(())` (all-or-none: a generation
    /// that completed delivers `Ok` to all its participants).
    pub(crate) fn barrier(&self, world: usize) -> Result<(), ()> {
        let mut st = self.lock();
        if st.revoked {
            return Err(());
        }
        st.bar_count += 1;
        if st.bar_count == world {
            st.bar_count = 0;
            st.bar_gen += 1;
            self.cv.notify_all();
            return Ok(());
        }
        let gen = st.bar_gen;
        while st.bar_gen == gen && !st.revoked {
            st = self.cv.wait(st).expect("detector poisoned");
        }
        if st.bar_gen == gen {
            // Revoked before completion: withdraw our arrival.
            st.bar_count -= 1;
            Err(())
        } else {
            Ok(())
        }
    }

    /// Commit fail-point boundary `id`: recovery for the current round is
    /// complete and protection is re-armed, so the round's victim set is
    /// cleared — except victims revoked since the last agreement. Such a
    /// victim's death raced this commit (the committer cannot have
    /// recovered what it never observed), and dropping it would leave a
    /// dead process that no agreement ever reports. Idempotent per boundary
    /// — racing late committers of the same boundary must not wipe victims
    /// of a *new* failure that struck after the first commit.
    pub(crate) fn commit(&self, boundary: u64) {
        if !self.dirty.load(Ordering::Acquire) {
            return;
        }
        let mut st = self.lock();
        if st.committed <= boundary {
            st.committed = boundary + 1;
            let keep = std::mem::take(&mut st.pending_revoked);
            st.pending_revoked = keep.clone();
            st.round = keep;
            if st.round.is_empty() && !st.revoked {
                self.dirty.store(false, Ordering::Release);
            }
        }
    }

    /// Current epoch (used by replacements joining after agreement and by
    /// the distributed agreement protocol, which stamps it into frames).
    pub(crate) fn epoch(&self) -> u64 {
        self.lock().epoch
    }

    /// Adopt victims learned from a peer's view during a distributed
    /// agreement iteration into the current round (the message-protocol
    /// analogue of hearing an `announce`/`revoke` through shared memory).
    pub(crate) fn merge_round(&self, victims: &[usize]) {
        if victims.is_empty() {
            return;
        }
        let mut st = self.lock();
        for &v in victims {
            st.round.insert(v);
        }
        self.dirty.store(true, Ordering::Release);
    }

    /// Install the converged result of a *distributed* agreement: `victims`
    /// is the union every rank computed from the exchanged views, `epoch`
    /// the new communication epoch. Mirrors what the shared-memory
    /// rendezvous does on completion — with one difference: a death this
    /// rank observed locally but that did not make it into the union (it
    /// raced the exchange) stays pending and keeps the world revoked, so
    /// the very next communication call aborts into a fresh agreement
    /// instead of silently dropping the victim.
    pub(crate) fn apply_remote_agreement(&self, victims: &[usize], epoch: u64) {
        let mut st = self.lock();
        for &v in victims {
            st.round.insert(v);
        }
        st.epoch = epoch;
        st.agree_victims = victims.to_vec();
        st.pending_revoked = st.round.iter().copied().filter(|v| !victims.contains(v)).collect();
        st.revoked = !st.pending_revoked.is_empty();
        self.revoked.store(st.revoked, Ordering::Release);
        self.dirty.store(true, Ordering::Release);
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn board_cursor_reads() {
        let d = Detector::default();
        d.announce(2);
        d.announce(7);
        assert_eq!(d.board_from(0), vec![2, 7]);
        assert_eq!(d.board_from(1), vec![7]);
        assert_eq!(d.board_from(2), Vec::<usize>::new());
        assert_eq!(d.board_len(), 2);
    }

    #[test]
    fn revoke_then_agree_converges_and_clears() {
        let d = Arc::new(Detector::default());
        d.revoke(3);
        d.announce(1);
        assert!(d.is_revoked());
        let world = 4;
        let results: Vec<FailureAgreement> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..world).map(|_| s.spawn(|| d.agree(world))).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for r in &results {
            assert_eq!(r.victims, vec![1, 3], "divergent victim set");
            assert_eq!(r.epoch, 1);
        }
        assert!(!d.is_revoked(), "agreement must clear revocation");
        // Commit clears the round; the next agreement sees only new victims.
        d.commit(0);
        d.revoke(2);
        let results: Vec<FailureAgreement> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..world).map(|_| s.spawn(|| d.agree(world))).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for r in &results {
            assert_eq!(r.victims, vec![2]);
            assert_eq!(r.epoch, 2);
        }
        assert_eq!(d.epoch(), 2);
    }

    #[test]
    fn commit_is_idempotent_per_boundary() {
        let d = Detector::default();
        d.announce(5);
        d.commit(7); // first committer clears
        assert!(d.current_victims().is_empty());
        d.announce(6); // a NEW failure after the first commit...
        d.commit(7); // ...survives late committers of the same boundary
        assert_eq!(d.current_victims(), vec![6]);
    }

    #[test]
    fn commit_keeps_unagreed_revocations() {
        // A revocation racing a boundary commit: the committer cannot have
        // recovered a death it never observed, so the victim must survive
        // into the next agreement instead of silently vanishing.
        let d = Detector::default();
        d.revoke(3);
        assert_eq!(d.agree(1).victims, vec![3]);
        d.commit(0); // agreed victim: cleared
        assert!(d.current_victims().is_empty());
        d.revoke(2); // dies...
        d.commit(1); // ...just as a later boundary commits
        assert_eq!(d.current_victims(), vec![2], "unagreed victim wiped by commit");
        assert_eq!(d.agree(1).victims, vec![2]);
        d.commit(2);
        assert!(d.current_victims().is_empty());
    }

    #[test]
    fn barrier_completes_without_revocation() {
        let d = Arc::new(Detector::default());
        let world = 3;
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..world).map(|_| s.spawn(|| d.barrier(world))).collect();
            for h in handles {
                assert_eq!(h.join().unwrap(), Ok(()));
            }
        });
    }

    #[test]
    fn barrier_backs_out_on_revocation() {
        let d = Arc::new(Detector::default());
        let world = 3;
        std::thread::scope(|s| {
            // Only 2 of 3 arrive; the third revokes instead.
            let a = s.spawn(|| d.barrier(world));
            let b = s.spawn(|| d.barrier(world));
            std::thread::sleep(std::time::Duration::from_millis(20));
            d.revoke(2);
            assert_eq!(a.join().unwrap(), Err(()));
            assert_eq!(b.join().unwrap(), Err(()));
        });
        // After agreement the barrier works again.
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..world).map(|_| s.spawn(|| d.agree(world))).collect();
            for h in handles {
                h.join().unwrap();
            }
        });
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..world).map(|_| s.spawn(|| d.barrier(world))).collect();
            for h in handles {
                assert_eq!(h.join().unwrap(), Ok(()));
            }
        });
    }

    #[test]
    fn catch_interrupt_passes_real_panics_through() {
        let r = catch_interrupt(|| 42);
        assert_eq!(r.unwrap(), 42);
        let r = catch_interrupt(|| raise_interrupt(InterruptReason::Revoked, 3));
        let i = r.unwrap_err();
        assert_eq!(i.reason, InterruptReason::Revoked);
        assert_eq!(i.rank, 3);
        // A genuine panic is NOT swallowed.
        let r = std::panic::catch_unwind(|| catch_interrupt(|| panic!("real bug")));
        assert!(r.is_err());
    }
}
