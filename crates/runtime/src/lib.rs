//! # ft-runtime — simulated distributed-memory machine
//!
//! The paper runs on Titan with MPI/BLACS. This crate is the substitution
//! documented in DESIGN.md §2: a process grid where every "process" is an OS
//! thread with **private local storage**, communicating exclusively through
//! typed message channels. The algorithms above this layer (ft-pblas,
//! ft-hess) only ever observe:
//!
//! * a `P×Q` logical process grid ([`Grid`]),
//! * point-to-point tagged `send`/`recv`,
//! * row/column/world broadcasts and sum-reductions with **deterministic
//!   reduction order** (rank order — so residuals are bit-reproducible),
//! * barriers,
//! * a fail-stop fault injector ([`FaultScript`]) and a failure notice board
//!   (the stand-in for ULFM-style failure detection).
//!
//! ## Failure model
//!
//! Failures are injected at *fail points* — quiescent phase boundaries the
//! algorithm announces via [`Ctx::check_failpoint`]. A victim's closure
//! observes [`FailCheck::Failure`] with `me == true`, at which point it must
//! act as the *replacement* process: drop all of its local data (that is the
//! data loss) and rejoin the recovery protocol. Survivors observe the victim
//! list and run the recovery side. Because fail points sit between
//! communication phases, channels are quiescent and no in-flight messages
//! are lost — matching the paper's recovery model, which repairs the grid
//! before recovering data (§5.3 step 1).

pub mod comm;
pub mod fault;
pub mod grid;

pub use comm::{Ctx, FailCheck};
pub use fault::{poisson_failures, FaultScript, PlannedFailure};
pub use grid::Grid;

use std::sync::Arc;

/// Run `f` in SPMD style on a `p×q` grid: one thread per process, each
/// receiving its own [`Ctx`]. Returns the per-rank results in rank order.
///
/// Panics in any process propagate (the whole run aborts), which keeps test
/// failures loud.
///
/// ```
/// use ft_runtime::{run_spmd, FaultScript};
///
/// // Every process contributes its rank; a row all-reduce sums them.
/// let sums = run_spmd(2, 3, FaultScript::none(), |ctx| {
///     let mut v = vec![ctx.rank() as f64];
///     ctx.allreduce_sum_row(&mut v, 1);
///     v[0]
/// });
/// // Row 0 holds ranks 0+1+2 = 3, row 1 holds 3+4+5 = 12.
/// assert_eq!(sums, vec![3.0, 3.0, 3.0, 12.0, 12.0, 12.0]);
/// ```
pub fn run_spmd<R, F>(p: usize, q: usize, script: FaultScript, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Ctx) -> R + Sync,
{
    let grid = Grid::new(p, q);
    let world = comm::World::new(grid, Arc::new(script));
    let mut ctxs: Vec<Option<Ctx>> = world.into_ctxs().into_iter().map(Some).collect();

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(p * q);
        for slot in ctxs.iter_mut() {
            let ctx = slot.take().expect("ctx already taken");
            let fref = &f;
            handles.push(scope.spawn(move || fref(ctx)));
        }
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                // Re-raise with the original payload so `should_panic`
                // expectations and error messages stay meaningful.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spmd_runs_all_ranks() {
        let out = run_spmd(2, 3, FaultScript::none(), |ctx| ctx.rank());
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn spmd_single_process() {
        let out = run_spmd(1, 1, FaultScript::none(), |ctx| {
            ctx.barrier();
            ctx.myrow() + ctx.mycol()
        });
        assert_eq!(out, vec![0]);
    }
}
