//! # ft-runtime — simulated distributed-memory machine
//!
//! The paper runs on Titan with MPI/BLACS. This crate is the substitution
//! documented in DESIGN.md §2: a process grid where every "process" is an OS
//! thread with **private local storage**, communicating exclusively through
//! typed message channels. The algorithms above this layer (ft-pblas,
//! ft-hess) only ever observe:
//!
//! * a `P×Q` logical process grid ([`Grid`]),
//! * point-to-point tagged `send`/`recv` over a pluggable [`Transport`],
//! * row/column/world binomial-tree broadcasts and sum-reductions with a
//!   **fixed, deterministic combine order** (the tree's — so residuals are
//!   bit-reproducible; see [`collectives`]),
//! * revocable barriers,
//! * a fail-stop fault injector ([`FaultScript`] for scripted quiescent
//!   failures, [`ChaosScript`] for arbitrary-point kills) and a failure
//!   detection/agreement layer ([`detect`], the ULFM-style stand-in for
//!   FT-MPI).
//!
//! ## Failure model
//!
//! *Scripted* failures strike at *fail points* — quiescent phase boundaries
//! the algorithm announces via [`Ctx::check_failpoint`]. A victim's closure
//! observes [`FailCheck::Failure`] with `me == true`, at which point it must
//! act as the *replacement* process: drop all of its local data (that is the
//! data loss) and rejoin the recovery protocol. Survivors observe the victim
//! list and run the recovery side. Because fail points sit between
//! communication phases, channels are quiescent and no in-flight messages
//! are lost — matching the paper's recovery model, which repairs the grid
//! before recovering data (§5.3 step 1).
//!
//! *Chaos* failures ([`run_spmd_chaos`]) strike at arbitrary message-op
//! boundaries with no cooperation from the algorithm. The victim revokes
//! the world and closes its endpoint as it dies; every blocked or future
//! communication call on a survivor unwinds with a typed [`Interrupt`]
//! (catch it with [`catch_interrupt`]), and all processes then converge on
//! an identical victim set through [`Ctx::agree_on_failures`] before
//! restarting from their last consistent state. Messages from the aborted
//! attempt are discarded by epoch. Both injectors are deterministic.

pub mod collectives;
pub mod comm;
pub mod detect;
pub mod dist;
pub mod fault;
pub mod grid;
pub mod netchaos;
pub mod tag;
pub mod tcp;
pub mod transport;

pub use collectives::PendingBcast;
pub use comm::{Ctx, FailCheck};
pub use detect::{catch_interrupt, FailureAgreement, Interrupt, InterruptReason};
pub use fault::{poisson_failures, ChaosKill, ChaosPoint, ChaosScript, FaultScript, PlannedFailure, SdcFlip, SdcScript};
pub use grid::Grid;
pub use netchaos::{NetChaosScript, NetFault, NetPartition};
pub use tag::{PhaseTraffic, Tag, TrafficLedger, TrafficPhase, JOB_TAG_CHANNELS, JOB_TAG_LANES};
pub use tcp::jobs::{self, JobFrame};
pub use tcp::{TcpConfig, TcpTransport};
pub use transport::{CommError, MpscTransport, Msg, PeerCounters, Transport, TransportStats};

use std::sync::Arc;

/// Run `f` in SPMD style on a `p×q` grid: one thread per process, each
/// receiving its own [`Ctx`]. Returns the per-rank results in rank order.
///
/// Panics in any process propagate (the whole run aborts), which keeps test
/// failures loud.
///
/// ```
/// use ft_runtime::{run_spmd, FaultScript};
///
/// // Every process contributes its rank; a row all-reduce sums them.
/// let sums = run_spmd(2, 3, FaultScript::none(), |ctx| {
///     let mut v = vec![ctx.rank() as f64];
///     ctx.allreduce_sum_row(&mut v, 1);
///     v[0]
/// });
/// // Row 0 holds ranks 0+1+2 = 3, row 1 holds 3+4+5 = 12.
/// assert_eq!(sums, vec![3.0, 3.0, 3.0, 12.0, 12.0, 12.0]);
/// ```
pub fn run_spmd<R, F>(p: usize, q: usize, script: FaultScript, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Ctx) -> R + Sync,
{
    run_spmd_full(p, q, script, ChaosScript::none(), SdcScript::none(), f)
}

/// [`run_spmd`] with a chaos-kill schedule on top of the scripted failures:
/// victims die at arbitrary message-op boundaries (once the algorithm calls
/// [`Ctx::arm_chaos`]), exercising detection, agreement and re-entrant
/// recovery instead of the cooperative fail-point path.
pub fn run_spmd_chaos<R, F>(p: usize, q: usize, script: FaultScript, chaos: ChaosScript, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Ctx) -> R + Sync,
{
    run_spmd_full(p, q, script, chaos, SdcScript::none(), f)
}

/// The full-fault-model entry point: scripted fail-stop failures, chaos
/// kills *and* silent bit flips ([`SdcScript`]) in one run. Flips queue on
/// the victim's op clock and are applied by the algorithm's scrub layer
/// (see [`Ctx::take_sdc_flips`]); kills behave as in [`run_spmd_chaos`].
pub fn run_spmd_full<R, F>(p: usize, q: usize, script: FaultScript, chaos: ChaosScript, sdc: SdcScript, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Ctx) -> R + Sync,
{
    if !chaos.is_empty() {
        // Interrupt unwinds are control flow; keep them off stderr.
        detect::install_quiet_interrupt_hook();
    }
    let grid = Grid::new(p, q);
    let world = comm::World::new(grid, Arc::new(script), Arc::new(chaos), Arc::new(sdc));
    run_world(p, q, world, f)
}

/// [`run_spmd`] over caller-supplied [`Transport`] endpoints (in rank
/// order) instead of the default in-process mpsc fabric — the pluggable
/// communicator seam. Endpoint `i` becomes rank `i`'s wire.
pub fn run_spmd_with<R, F>(p: usize, q: usize, script: FaultScript, transports: Vec<Box<dyn Transport>>, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Ctx) -> R + Sync,
{
    let grid = Grid::new(p, q);
    let world = comm::World::with_transports(
        grid,
        Arc::new(script),
        Arc::new(ChaosScript::none()),
        Arc::new(SdcScript::none()),
        transports,
    );
    run_world(p, q, world, f)
}

/// Run **one rank** of a multi-process world: this process owns a single
/// [`Ctx`] whose only tie to its `p·q − 1` peers is `transport` (typically
/// a [`tcp::TcpTransport`]). Barriers and failure agreement run as message
/// protocols over reserved control wires ([`dist`]); peer deaths are
/// detected from the wire (heartbeat silence / connection EOF) instead of
/// a shared revocation flag. The chaos script is evaluated against this
/// rank's op clock exactly as in-process, but a strike is a *real* process
/// death: the victim emits a `FT_CHAOS_KILL` marker for the launcher to
/// SIGKILL it (aborting itself if nobody does).
/// Terminal communication faults (an unhealable partition's agreement
/// deadline, raised as a typed [`CommError::Partitioned`] unwind) are
/// caught and surfaced as `Err` so every surviving rank process can exit
/// with the identical typed error instead of a panic trace. Genuine
/// panics still propagate.
pub fn run_distributed<R>(
    p: usize,
    q: usize,
    chaos: ChaosScript,
    transport: Box<dyn Transport>,
    f: impl FnOnce(Ctx) -> R,
) -> Result<R, CommError> {
    // Real peers can die at any time, chaos script or not: interrupt
    // unwinds are normal control flow here, keep them off stderr.
    detect::install_quiet_interrupt_hook();
    let ctx = comm::World::distributed_ctx(Grid::new(p, q), Arc::new(chaos), transport);
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(ctx))) {
        Ok(v) => Ok(v),
        Err(payload) => match payload.downcast::<CommError>() {
            Ok(e) => Err(*e),
            Err(other) => std::panic::resume_unwind(other),
        },
    }
}

fn run_world<R, F>(p: usize, q: usize, world: comm::World, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Ctx) -> R + Sync,
{
    let mut ctxs: Vec<Option<Ctx>> = world.into_ctxs().into_iter().map(Some).collect();

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(p * q);
        for slot in ctxs.iter_mut() {
            let ctx = slot.take().expect("ctx already taken");
            let fref = &f;
            handles.push(scope.spawn(move || fref(ctx)));
        }
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                // Re-raise with the original payload so `should_panic`
                // expectations and error messages stay meaningful.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spmd_runs_all_ranks() {
        let out = run_spmd(2, 3, FaultScript::none(), |ctx| ctx.rank());
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn spmd_single_process() {
        let out = run_spmd(1, 1, FaultScript::none(), |ctx| {
            ctx.barrier();
            ctx.myrow() + ctx.mycol()
        });
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn chaos_kill_unwinds_victim_and_revokes_survivors() {
        // Rank 1 dies at its very first armed op (a send); rank 0's blocked
        // recv observes the revocation instead of deadlocking. Both then
        // agree on the victim set and finish in the new epoch.
        let out = run_spmd_chaos(1, 2, FaultScript::none(), ChaosScript::at_op(1, 0), |ctx| {
            ctx.arm_chaos();
            let r = catch_interrupt(|| {
                if ctx.rank() == 1 {
                    ctx.send(0, 7, &[1.0]); // chaos kills rank 1 here
                    unreachable!("victim survived its own death");
                } else {
                    let _ = ctx.recv(1, 7); // unwinds on revocation
                    unreachable!("survivor missed the revocation");
                }
            });
            let interrupt = r.unwrap_err();
            let expect = if ctx.rank() == 1 { InterruptReason::Died } else { InterruptReason::Revoked };
            assert_eq!(interrupt.reason, expect);
            let agreed = ctx.agree_on_failures();
            assert_eq!(agreed.victims, vec![1], "divergent victim set");
            assert_eq!(agreed.epoch, 1);
            // The replacement's endpoint is reopened: traffic flows again.
            if ctx.rank() == 0 {
                ctx.send(1, 8, &[2.0]);
            } else {
                assert_eq!(ctx.recv(0, 8), vec![2.0]);
            }
            agreed.victims
        });
        assert_eq!(out, vec![vec![1], vec![1]]);
    }

    #[test]
    fn chaos_not_armed_means_no_kills() {
        // The script targets op 0, but the algorithm never arms chaos:
        // nothing dies.
        let out = run_spmd_chaos(1, 2, FaultScript::none(), ChaosScript::at_op(1, 0), |ctx| {
            if ctx.rank() == 1 {
                ctx.send(0, 7, &[1.0]);
                0
            } else {
                ctx.recv(1, 7).len()
            }
        });
        assert_eq!(out, vec![1, 0]);
    }

    #[test]
    fn sdc_flips_queue_on_the_op_clock_and_drain_once() {
        let sdc = SdcScript::one(SdcFlip { victim: 1, op: 1, word: 5, bit: 40 });
        run_spmd_full(1, 2, FaultScript::none(), ChaosScript::none(), sdc, |ctx| {
            // Not armed yet: the clock is dead, nothing can queue.
            assert!(!ctx.sdc_enabled());
            ctx.arm_chaos();
            assert!(ctx.sdc_enabled());
            if ctx.rank() == 1 {
                ctx.send(0, 7, &[1.0]); // op 0
                assert!(ctx.take_sdc_flips().is_empty(), "flip fired an op early");
                ctx.send(0, 7, &[2.0]); // op 1: the flip queues here
                assert_eq!(ctx.take_sdc_flips(), vec![SdcFlip { victim: 1, op: 1, word: 5, bit: 40 }]);
                // Drained exactly once.
                assert!(ctx.take_sdc_flips().is_empty());
            } else {
                let _ = ctx.recv(1, 7);
                let _ = ctx.recv(1, 7);
                // Ops tick on this rank too, but it is not the victim.
                assert!(ctx.take_sdc_flips().is_empty());
            }
            ctx.disarm_chaos();
        });
    }

    #[test]
    fn stale_epoch_messages_are_dropped_after_agreement() {
        use std::time::Duration;
        let out = run_spmd_chaos(1, 2, FaultScript::none(), ChaosScript::at_op(1, 2), |ctx| {
            ctx.arm_chaos();
            let r = catch_interrupt(|| {
                if ctx.rank() == 1 {
                    ctx.send(0, 7, &[1.0]); // op 0: delivered, but never received
                    ctx.send(0, 7, &[2.0]); // op 1: straggler in rank 0's inbox
                    ctx.send(0, 7, &[3.0]); // op 2: chaos kills rank 1 here
                    unreachable!();
                } else {
                    // Block on a tag rank 1 never sends, so the pre-death
                    // messages sit in the inbox when revocation hits.
                    let _ = ctx.recv(1, 99);
                    unreachable!();
                }
            });
            assert!(r.is_err());
            ctx.agree_on_failures();
            if ctx.rank() == 0 {
                // Epoch-0 stragglers on tag 7 must be invisible now.
                let stale = ctx.try_recv(1, 7, Duration::from_millis(50));
                assert_eq!(stale, Err(CommError::Timeout), "stale-epoch message leaked");
            }
            ctx.barrier();
            // Fresh traffic in the new epoch flows normally.
            if ctx.rank() == 1 {
                ctx.send(0, 7, &[9.0]);
            } else {
                assert_eq!(ctx.recv(1, 7), vec![9.0]);
            }
            true
        });
        assert_eq!(out, vec![true, true]);
    }
}
