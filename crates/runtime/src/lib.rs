//! # ft-runtime — simulated distributed-memory machine
//!
//! The paper runs on Titan with MPI/BLACS. This crate is the substitution
//! documented in DESIGN.md §2: a process grid where every "process" is an OS
//! thread with **private local storage**, communicating exclusively through
//! typed message channels. The algorithms above this layer (ft-pblas,
//! ft-hess) only ever observe:
//!
//! * a `P×Q` logical process grid ([`Grid`]),
//! * point-to-point tagged `send`/`recv` over a pluggable [`Transport`],
//! * row/column/world binomial-tree broadcasts and sum-reductions with a
//!   **fixed, deterministic combine order** (the tree's — so residuals are
//!   bit-reproducible; see [`collectives`]),
//! * barriers,
//! * a fail-stop fault injector ([`FaultScript`]) and a failure notice board
//!   (the stand-in for ULFM-style failure detection).
//!
//! ## Failure model
//!
//! Failures are injected at *fail points* — quiescent phase boundaries the
//! algorithm announces via [`Ctx::check_failpoint`]. A victim's closure
//! observes [`FailCheck::Failure`] with `me == true`, at which point it must
//! act as the *replacement* process: drop all of its local data (that is the
//! data loss) and rejoin the recovery protocol. Survivors observe the victim
//! list and run the recovery side. Because fail points sit between
//! communication phases, channels are quiescent and no in-flight messages
//! are lost — matching the paper's recovery model, which repairs the grid
//! before recovering data (§5.3 step 1).

pub mod collectives;
pub mod comm;
pub mod fault;
pub mod grid;
pub mod tag;
pub mod transport;

pub use comm::{Ctx, FailCheck};
pub use fault::{poisson_failures, FaultScript, PlannedFailure};
pub use grid::Grid;
pub use tag::{PhaseTraffic, Tag, TrafficLedger, TrafficPhase};
pub use transport::{MpscTransport, Msg, Transport};

use std::sync::Arc;

/// Run `f` in SPMD style on a `p×q` grid: one thread per process, each
/// receiving its own [`Ctx`]. Returns the per-rank results in rank order.
///
/// Panics in any process propagate (the whole run aborts), which keeps test
/// failures loud.
///
/// ```
/// use ft_runtime::{run_spmd, FaultScript};
///
/// // Every process contributes its rank; a row all-reduce sums them.
/// let sums = run_spmd(2, 3, FaultScript::none(), |ctx| {
///     let mut v = vec![ctx.rank() as f64];
///     ctx.allreduce_sum_row(&mut v, 1);
///     v[0]
/// });
/// // Row 0 holds ranks 0+1+2 = 3, row 1 holds 3+4+5 = 12.
/// assert_eq!(sums, vec![3.0, 3.0, 3.0, 12.0, 12.0, 12.0]);
/// ```
pub fn run_spmd<R, F>(p: usize, q: usize, script: FaultScript, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Ctx) -> R + Sync,
{
    let grid = Grid::new(p, q);
    let world = comm::World::new(grid, Arc::new(script));
    run_world(p, q, world, f)
}

/// [`run_spmd`] over caller-supplied [`Transport`] endpoints (in rank
/// order) instead of the default in-process mpsc fabric — the pluggable
/// communicator seam. Endpoint `i` becomes rank `i`'s wire.
pub fn run_spmd_with<R, F>(p: usize, q: usize, script: FaultScript, transports: Vec<Box<dyn Transport>>, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Ctx) -> R + Sync,
{
    let grid = Grid::new(p, q);
    let world = comm::World::with_transports(grid, Arc::new(script), transports);
    run_world(p, q, world, f)
}

fn run_world<R, F>(p: usize, q: usize, world: comm::World, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Ctx) -> R + Sync,
{
    let mut ctxs: Vec<Option<Ctx>> = world.into_ctxs().into_iter().map(Some).collect();

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(p * q);
        for slot in ctxs.iter_mut() {
            let ctx = slot.take().expect("ctx already taken");
            let fref = &f;
            handles.push(scope.spawn(move || fref(ctx)));
        }
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                // Re-raise with the original payload so `should_panic`
                // expectations and error messages stay meaningful.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spmd_runs_all_ranks() {
        let out = run_spmd(2, 3, FaultScript::none(), |ctx| ctx.rank());
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn spmd_single_process() {
        let out = run_spmd(1, 1, FaultScript::none(), |ctx| {
            ctx.barrier();
            ctx.myrow() + ctx.mycol()
        });
        assert_eq!(out, vec![0]);
    }
}
