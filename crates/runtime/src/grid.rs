//! The logical 2D process grid (BLACS context equivalent).

/// A `P×Q` logical process grid. Rank `r` sits at row `r / Q`, column
/// `r % Q` (row-major rank layout, matching the BLACS default).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grid {
    nprow: usize,
    npcol: usize,
}

impl Grid {
    /// Create a `p×q` grid. Panics on an empty dimension.
    pub fn new(p: usize, q: usize) -> Self {
        assert!(p > 0 && q > 0, "grid dimensions must be positive");
        Self { nprow: p, npcol: q }
    }

    /// Number of process rows `P`.
    #[inline]
    pub fn nprow(&self) -> usize {
        self.nprow
    }

    /// Number of process columns `Q`.
    #[inline]
    pub fn npcol(&self) -> usize {
        self.npcol
    }

    /// Total process count `P·Q`.
    #[inline]
    pub fn size(&self) -> usize {
        self.nprow * self.npcol
    }

    /// Rank of the process at grid coordinates `(p, q)`.
    #[inline]
    pub fn rank_of(&self, p: usize, q: usize) -> usize {
        debug_assert!(p < self.nprow && q < self.npcol);
        p * self.npcol + q
    }

    /// Grid coordinates `(p, q)` of `rank`.
    #[inline]
    pub fn coords_of(&self, rank: usize) -> (usize, usize) {
        debug_assert!(rank < self.size());
        (rank / self.npcol, rank % self.npcol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_coord_roundtrip() {
        let g = Grid::new(3, 4);
        assert_eq!(g.size(), 12);
        for r in 0..12 {
            let (p, q) = g.coords_of(r);
            assert_eq!(g.rank_of(p, q), r);
            assert!(p < 3 && q < 4);
        }
        assert_eq!(g.coords_of(0), (0, 0));
        assert_eq!(g.coords_of(5), (1, 1));
    }

    #[test]
    #[should_panic]
    fn empty_grid_rejected() {
        let _ = Grid::new(0, 2);
    }
}
