//! Fail-stop fault injection: scripted (cooperative) and chaos (arbitrary).
//!
//! A [`FaultScript`] plans process failures ahead of a run: each
//! [`PlannedFailure`] names a victim rank and an opaque *fail point* id. The
//! algorithm encodes its phase boundaries into the id (ft-hess packs
//! `(iteration, phase)`), calls [`crate::Ctx::check_failpoint`] at each one,
//! and the runtime turns the matching script entries into observed failures.
//! Scripted failures strike at quiescent boundaries — the paper's FT-MPI
//! model where recovery starts from a globally consistent state.
//!
//! A [`ChaosScript`] drops that courtesy: it kills victims at arbitrary
//! *message-operation* boundaries — the Nth send/recv a rank performs, which
//! lands mid-collective, mid-panel, anywhere — including *inside an ongoing
//! recovery* ([`ChaosPoint::RecoveryOp`]). Detection then runs through the
//! revoke/agree protocol in [`crate::detect`] rather than the cooperative
//! notice board. Both injectors are deterministic: same script, same
//! schedule, every run.
//!
//! Multiple victims may share one fail point (simultaneous failures). The
//! paper tolerates any set of simultaneous failures with at most one victim
//! per process *row*; enforcing that constraint is the algorithm's job, not
//! the injector's — the injector will happily kill anything it is told to.

/// One planned process failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedFailure {
    /// Rank of the process that dies.
    pub victim: usize,
    /// Fail-point id at which it dies (algorithm-defined encoding).
    pub point: u64,
}

/// A scripted set of fail-stop failures for one run.
///
/// Failures are kept sorted by fail point so the per-fail-point lookup on
/// the hot path is a binary search over a slice — no allocation, no lock.
#[derive(Debug, Default)]
pub struct FaultScript {
    /// Sorted by `point` (stable: intra-point script order is preserved,
    /// which fixes the victim announcement order for simultaneous failures).
    failures: Vec<PlannedFailure>,
}

impl FaultScript {
    /// No failures — the fault-free baseline.
    pub fn none() -> Self {
        Self::default()
    }

    /// Script the given failures.
    pub fn new(mut failures: Vec<PlannedFailure>) -> Self {
        failures.sort_by_key(|f| f.point);
        Self { failures }
    }

    /// Single failure of `victim` at `point`.
    pub fn one(victim: usize, point: u64) -> Self {
        Self::new(vec![PlannedFailure { victim, point }])
    }

    /// Victims scheduled to die at `point`, in script order. Borrows the
    /// sorted slice — the per-fail-point check allocates nothing.
    pub fn victims_at(&self, point: u64) -> impl Iterator<Item = usize> + '_ {
        self.range_at(point).iter().map(|f| f.victim)
    }

    /// Whether `rank` is scripted to die at `point` (binary search, no
    /// allocation).
    pub fn is_victim_at(&self, point: u64, rank: usize) -> bool {
        self.range_at(point).iter().any(|f| f.victim == rank)
    }

    fn range_at(&self, point: u64) -> &[PlannedFailure] {
        let lo = self.failures.partition_point(|f| f.point < point);
        let hi = self.failures.partition_point(|f| f.point <= point);
        &self.failures[lo..hi]
    }

    /// `true` if the script is empty.
    pub fn is_empty(&self) -> bool {
        self.failures.is_empty()
    }

    /// All planned failures (sorted by fail point).
    pub fn failures(&self) -> &[PlannedFailure] {
        &self.failures
    }
}

/// When a [`ChaosKill`] strikes, counted in *message operations* (each
/// `send` or `recv` a rank performs counts as one op). Counting starts when
/// the algorithm arms the injector (after initial encoding — the paper's
/// protection domain).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosPoint {
    /// The victim's `0`-based Nth message operation. Lands wherever that op
    /// happens to be: mid-broadcast, mid-reduction, between panels — no
    /// cooperation from the algorithm.
    Op(u64),
    /// The victim's Nth message operation *inside* recovery round `round`
    /// (1-based, counted across the whole run). This is how a failure
    /// strikes while a previous failure is still being repaired.
    RecoveryOp {
        /// Which recovery round (1 = the first recovery of the run).
        round: u32,
        /// 0-based op index within that round.
        op: u64,
    },
}

/// One chaos-mode kill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosKill {
    /// Rank of the process that dies.
    pub victim: usize,
    /// Where in the victim's message-op stream it dies.
    pub at: ChaosPoint,
}

/// A deterministic schedule of uncooperative kills. See [`ChaosPoint`].
#[derive(Debug, Default)]
pub struct ChaosScript {
    kills: Vec<ChaosKill>,
}

impl ChaosScript {
    /// No chaos — scripted failures (if any) only.
    pub fn none() -> Self {
        Self::default()
    }

    /// Schedule the given kills.
    pub fn new(kills: Vec<ChaosKill>) -> Self {
        Self { kills }
    }

    /// Single kill of `victim` at its `op`-th message operation.
    pub fn at_op(victim: usize, op: u64) -> Self {
        Self::new(vec![ChaosKill { victim, at: ChaosPoint::Op(op) }])
    }

    /// Derive a schedule of `n_kills` kills from `seed`: victims uniform
    /// over `world` ranks, op indices uniform in `[op_lo, op_hi)`, strictly
    /// increasing. Same seed, same schedule.
    pub fn seeded(seed: u64, world: usize, n_kills: usize, op_lo: u64, op_hi: u64) -> Self {
        assert!(world > 0 && op_hi > op_lo);
        let mut state = seed;
        let mut next_u64 = move || {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let span = op_hi - op_lo;
        let mut ops: Vec<u64> = (0..n_kills).map(|_| op_lo + next_u64() % span).collect();
        ops.sort_unstable();
        ops.dedup();
        let kills = ops
            .into_iter()
            .map(|op| ChaosKill {
                victim: (next_u64() % world as u64) as usize,
                at: ChaosPoint::Op(op),
            })
            .collect();
        Self { kills }
    }

    /// `true` if no kills are scheduled.
    pub fn is_empty(&self) -> bool {
        self.kills.is_empty()
    }

    /// All scheduled kills.
    pub fn kills(&self) -> &[ChaosKill] {
        &self.kills
    }

    /// Index of the kill that strikes `rank` at normal-op `op` /
    /// recovery-op `rec` (`(round, op)` when inside a recovery round).
    /// The caller tracks which indices already fired.
    pub(crate) fn kill_index(&self, rank: usize, op: u64, rec: Option<(u32, u64)>) -> Option<usize> {
        self.kills.iter().position(|k| {
            k.victim == rank
                && match k.at {
                    ChaosPoint::Op(o) => o == op,
                    ChaosPoint::RecoveryOp { round, op: o } => rec == Some((round, o)),
                }
        })
    }
}

/// One scheduled silent-data-corruption event: a single bit flip in the
/// victim's local matrix storage, landing at the victim's `op`-th message
/// operation (same clock as [`ChaosPoint::Op`]).
///
/// The runtime cannot reach into the algorithm's buffers (they live on the
/// algorithm's side of the [`crate::Ctx`] boundary), so a flip is *queued*
/// when its op fires and the algorithm drains the queue with
/// [`crate::Ctx::take_sdc_flips`] at its next phase boundary and applies
/// `buf[word % buf.len()] ^= 1 << bit` itself. The observable semantics:
/// a flip materializes at the first phase boundary after its scheduled op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SdcFlip {
    /// Rank whose local buffer is corrupted.
    pub victim: usize,
    /// 0-based message-op index at which the flip fires (armed clock).
    pub op: u64,
    /// Word index into the victim's local buffer; the applier reduces it
    /// modulo the buffer length, so any `u64` is a valid target.
    pub word: u64,
    /// Bit position `0..=63` within the IEEE-754 word.
    pub bit: u32,
}

/// A deterministic schedule of silent bit flips — the SDC analogue of
/// [`ChaosScript`]. Same clock, same determinism guarantees: same script,
/// same flips, every run.
#[derive(Debug, Default)]
pub struct SdcScript {
    flips: Vec<SdcFlip>,
}

impl SdcScript {
    /// No silent corruption.
    pub fn none() -> Self {
        Self::default()
    }

    /// Schedule the given flips.
    pub fn new(flips: Vec<SdcFlip>) -> Self {
        Self { flips }
    }

    /// Single flip.
    pub fn one(flip: SdcFlip) -> Self {
        Self::new(vec![flip])
    }

    /// Derive a schedule of `n_flips` bit flips from `seed`: victims
    /// uniform over `world` ranks, op indices uniform in `[op_lo, op_hi)`
    /// (strictly increasing), word offsets uniform over `u64`, and bit
    /// positions drawn from the *detectable* range `{32..=61, 63}` — high
    /// mantissa, exponent (minus the top exponent bit, whose flip on a
    /// normal value produces Inf and would test NaN plumbing rather than
    /// localization), and sign. Flips of low-order mantissa bits sit below
    /// any detection threshold that tolerates accumulated update roundoff
    /// (the classic ABFT detectability floor — see DESIGN.md §10); tests
    /// that want them construct [`SdcFlip`] values explicitly.
    pub fn seeded(seed: u64, world: usize, n_flips: usize, op_lo: u64, op_hi: u64) -> Self {
        assert!(world > 0 && op_hi > op_lo);
        let mut state = seed ^ 0x5DC5DC5DC5DC5DC5; // distinct stream from ChaosScript::seeded
        let mut next_u64 = move || {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        const BITS: [u32; 31] = [
            32, 33, 34, 35, 36, 37, 38, 39, 40, 41, 42, 43, 44, 45, 46, 47, 48, 49, 50, 51, 52, 53, 54, 55, 56, 57, 58, 59, 60,
            61, 63,
        ];
        let span = op_hi - op_lo;
        let mut ops: Vec<u64> = (0..n_flips).map(|_| op_lo + next_u64() % span).collect();
        ops.sort_unstable();
        ops.dedup();
        let flips = ops
            .into_iter()
            .map(|op| SdcFlip {
                victim: (next_u64() % world as u64) as usize,
                op,
                word: next_u64(),
                bit: BITS[(next_u64() % BITS.len() as u64) as usize],
            })
            .collect();
        Self { flips }
    }

    /// `true` if no flips are scheduled.
    pub fn is_empty(&self) -> bool {
        self.flips.is_empty()
    }

    /// All scheduled flips.
    pub fn flips(&self) -> &[SdcFlip] {
        &self.flips
    }

    /// Indices of flips striking `rank` at op `op`. The caller tracks which
    /// indices already fired (re-executed ops after a rollback must not
    /// re-flip).
    pub(crate) fn flip_indices(&self, rank: usize, op: u64) -> impl Iterator<Item = usize> + '_ {
        self.flips
            .iter()
            .enumerate()
            .filter(move |(_, f)| f.victim == rank && f.op == op)
            .map(|(i, _)| i)
    }
}

/// Generate a realistic fail-stop schedule: exponential (Poisson-process)
/// inter-arrival times over a run of `n_points` fail points, with a mean of
/// `mtti_points` points between failures and victims drawn uniformly from
/// `world` ranks.
///
/// This is the paper's §1 motivation made concrete: Jaguar averaged 2.33
/// failures/day over 537 days, i.e. an exponential failure process at the
/// machine level. Scale `mtti_points` so that
/// `n_points / mtti_points ≈ expected failures per run`.
///
/// At most one victim per fail point is emitted (repeated draws on the same
/// point are dropped), so any schedule this produces is tolerable by the
/// single-redundancy scheme as long as victims land in distinct rows —
/// which single-victim events always satisfy.
pub fn poisson_failures(n_points: u64, mtti_points: f64, world: usize, seed: u64) -> Vec<PlannedFailure> {
    assert!(mtti_points > 0.0 && world > 0);
    // SplitMix64 stream (same generator family as `ft_dense::rng`, inlined
    // here so the runtime stays dependency-free).
    let mut state = seed;
    let mut next_u64 = move || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    let mut out: Vec<PlannedFailure> = Vec::new();
    let mut t = 0.0f64;
    loop {
        // Exponential inter-arrival: −MTTI·ln(U), U ∈ (0, 1].
        let u = ((next_u64() >> 11) + 1) as f64 / (1u64 << 53) as f64;
        t += -mtti_points * u.ln();
        if t >= n_points as f64 {
            break;
        }
        let point = t as u64;
        if out.last().is_some_and(|f| f.point == point) {
            continue; // one victim per point
        }
        out.push(PlannedFailure { victim: (next_u64() % world as u64) as usize, point });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_lookup() {
        let s = FaultScript::new(vec![
            PlannedFailure { victim: 1, point: 99 },
            PlannedFailure { victim: 3, point: 17 },
            PlannedFailure { victim: 5, point: 17 },
        ]);
        assert_eq!(s.victims_at(17).collect::<Vec<_>>(), vec![3, 5]);
        assert_eq!(s.victims_at(99).collect::<Vec<_>>(), vec![1]);
        assert_eq!(s.victims_at(0).count(), 0);
        assert!(s.is_victim_at(17, 5));
        assert!(!s.is_victim_at(17, 1));
        assert!(!s.is_victim_at(0, 3));
        assert!(!s.is_empty());
        assert!(FaultScript::none().is_empty());
    }

    #[test]
    fn script_preserves_intra_point_order() {
        // Two victims at the same point keep script order after sorting
        // (announcement order is part of the observable protocol).
        let s = FaultScript::new(vec![PlannedFailure { victim: 9, point: 5 }, PlannedFailure { victim: 2, point: 5 }]);
        assert_eq!(s.victims_at(5).collect::<Vec<_>>(), vec![9, 2]);
    }

    #[test]
    fn chaos_lookup_and_fire_points() {
        let c = ChaosScript::new(vec![
            ChaosKill { victim: 2, at: ChaosPoint::Op(100) },
            ChaosKill { victim: 0, at: ChaosPoint::RecoveryOp { round: 1, op: 7 } },
        ]);
        assert_eq!(c.kill_index(2, 100, None), Some(0));
        assert_eq!(c.kill_index(2, 99, None), None);
        assert_eq!(c.kill_index(1, 100, None), None);
        // Recovery kills only strike inside the named round.
        assert_eq!(c.kill_index(0, 555, Some((1, 7))), Some(1));
        assert_eq!(c.kill_index(0, 555, Some((2, 7))), None);
        assert_eq!(c.kill_index(0, 555, None), None);
        assert!(ChaosScript::none().is_empty());
        assert!(!c.is_empty());
    }

    #[test]
    fn seeded_chaos_is_deterministic_and_in_range() {
        let a = ChaosScript::seeded(42, 6, 3, 50, 500);
        let b = ChaosScript::seeded(42, 6, 3, 50, 500);
        assert_eq!(a.kills(), b.kills());
        assert!(!a.is_empty());
        let mut prev = None;
        for k in a.kills() {
            assert!(k.victim < 6);
            let ChaosPoint::Op(op) = k.at else {
                panic!("seeded emits Op kills")
            };
            assert!((50..500).contains(&op));
            assert!(prev.is_none_or(|p| p < op), "ops must be strictly increasing");
            prev = Some(op);
        }
        // Different seed, different schedule (overwhelmingly likely).
        let c = ChaosScript::seeded(43, 6, 3, 50, 500);
        assert_ne!(a.kills(), c.kills());
    }

    #[test]
    fn sdc_lookup() {
        let s = SdcScript::new(vec![
            SdcFlip { victim: 1, op: 10, word: 3, bit: 40 },
            SdcFlip { victim: 1, op: 10, word: 9, bit: 63 },
            SdcFlip { victim: 0, op: 20, word: 0, bit: 52 },
        ]);
        assert_eq!(s.flip_indices(1, 10).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(s.flip_indices(0, 20).collect::<Vec<_>>(), vec![2]);
        assert_eq!(s.flip_indices(0, 10).count(), 0);
        assert!(!s.is_empty());
        assert!(SdcScript::none().is_empty());
    }

    #[test]
    fn seeded_sdc_is_deterministic_and_detectable() {
        let a = SdcScript::seeded(42, 6, 4, 50, 500);
        let b = SdcScript::seeded(42, 6, 4, 50, 500);
        assert_eq!(a.flips(), b.flips());
        assert!(!a.is_empty());
        let mut prev = None;
        for f in a.flips() {
            assert!(f.victim < 6);
            assert!((50..500).contains(&f.op));
            assert!(prev.is_none_or(|p| p < f.op), "ops must be strictly increasing");
            prev = Some(f.op);
            // Only detectable bits: high mantissa / exponent / sign, never
            // the top exponent bit (Inf-producing) or low mantissa.
            assert!((32..=61).contains(&f.bit) || f.bit == 63, "bit {}", f.bit);
        }
        let c = SdcScript::seeded(43, 6, 4, 50, 500);
        assert_ne!(a.flips(), c.flips());
        // A distinct stream from the chaos generator: same seed must not
        // yield kills and flips at identical op indices.
        let kills: Vec<u64> = ChaosScript::seeded(42, 6, 4, 50, 500)
            .kills()
            .iter()
            .map(|k| match k.at {
                ChaosPoint::Op(op) => op,
                _ => unreachable!(),
            })
            .collect();
        let flips: Vec<u64> = a.flips().iter().map(|f| f.op).collect();
        assert_ne!(kills, flips);
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;

    #[test]
    fn poisson_schedule_statistics() {
        let fails = poisson_failures(100_000, 1000.0, 16, 7);
        // Expect ~100 failures; allow wide slack.
        assert!(fails.len() > 50 && fails.len() < 200, "{}", fails.len());
        // Points strictly increasing, victims in range.
        for w in fails.windows(2) {
            assert!(w[0].point < w[1].point);
        }
        assert!(fails.iter().all(|f| f.victim < 16));
        // Reproducible.
        assert_eq!(fails, poisson_failures(100_000, 1000.0, 16, 7));
    }

    #[test]
    fn poisson_empty_when_mtti_huge() {
        let fails = poisson_failures(10, 1e12, 4, 1);
        assert!(fails.is_empty());
    }
}
