//! Fail-stop fault injection.
//!
//! A [`FaultScript`] plans process failures ahead of a run: each
//! [`PlannedFailure`] names a victim rank and an opaque *fail point* id. The
//! algorithm encodes its phase boundaries into the id (ft-hess packs
//! `(iteration, phase)`), calls [`crate::Ctx::check_failpoint`] at each one,
//! and the runtime turns the matching script entries into observed failures.
//!
//! Multiple victims may share one fail point (simultaneous failures). The
//! paper tolerates any set of simultaneous failures with at most one victim
//! per process *row*; enforcing that constraint is the algorithm's job, not
//! the injector's — the injector will happily kill anything it is told to.

use std::sync::Mutex;

/// One planned process failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedFailure {
    /// Rank of the process that dies.
    pub victim: usize,
    /// Fail-point id at which it dies (algorithm-defined encoding).
    pub point: u64,
}

/// A scripted set of fail-stop failures for one run.
#[derive(Debug, Default)]
pub struct FaultScript {
    failures: Vec<PlannedFailure>,
}

impl FaultScript {
    /// No failures — the fault-free baseline.
    pub fn none() -> Self {
        Self::default()
    }

    /// Script the given failures.
    pub fn new(failures: Vec<PlannedFailure>) -> Self {
        Self { failures }
    }

    /// Single failure of `victim` at `point`.
    pub fn one(victim: usize, point: u64) -> Self {
        Self::new(vec![PlannedFailure { victim, point }])
    }

    /// Victims scheduled to die at `point`.
    pub fn victims_at(&self, point: u64) -> Vec<usize> {
        self.failures.iter().filter(|f| f.point == point).map(|f| f.victim).collect()
    }

    /// `true` if the script is empty.
    pub fn is_empty(&self) -> bool {
        self.failures.is_empty()
    }

    /// All planned failures.
    pub fn failures(&self) -> &[PlannedFailure] {
        &self.failures
    }
}

/// Generate a realistic fail-stop schedule: exponential (Poisson-process)
/// inter-arrival times over a run of `n_points` fail points, with a mean of
/// `mtti_points` points between failures and victims drawn uniformly from
/// `world` ranks.
///
/// This is the paper's §1 motivation made concrete: Jaguar averaged 2.33
/// failures/day over 537 days, i.e. an exponential failure process at the
/// machine level. Scale `mtti_points` so that
/// `n_points / mtti_points ≈ expected failures per run`.
///
/// At most one victim per fail point is emitted (repeated draws on the same
/// point are dropped), so any schedule this produces is tolerable by the
/// single-redundancy scheme as long as victims land in distinct rows —
/// which single-victim events always satisfy.
pub fn poisson_failures(n_points: u64, mtti_points: f64, world: usize, seed: u64) -> Vec<PlannedFailure> {
    assert!(mtti_points > 0.0 && world > 0);
    // SplitMix64 stream (same generator family as `ft_dense::rng`, inlined
    // here so the runtime stays dependency-free).
    let mut state = seed;
    let mut next_u64 = move || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    let mut out: Vec<PlannedFailure> = Vec::new();
    let mut t = 0.0f64;
    loop {
        // Exponential inter-arrival: −MTTI·ln(U), U ∈ (0, 1].
        let u = ((next_u64() >> 11) + 1) as f64 / (1u64 << 53) as f64;
        t += -mtti_points * u.ln();
        if t >= n_points as f64 {
            break;
        }
        let point = t as u64;
        if out.last().is_some_and(|f| f.point == point) {
            continue; // one victim per point
        }
        out.push(PlannedFailure { victim: (next_u64() % world as u64) as usize, point });
    }
    out
}

/// The shared failure notice board — the stand-in for a runtime failure
/// detector. Victims announce themselves; every process reads the board at
/// the next fail point (between two barriers, so reads are race-free).
#[derive(Debug, Default)]
pub(crate) struct Board {
    entries: Mutex<Vec<usize>>,
}

impl Board {
    pub(crate) fn announce(&self, victim: usize) {
        self.entries.lock().expect("board poisoned").push(victim);
    }

    /// Entries from `from` onward (the caller tracks its own cursor).
    pub(crate) fn read_from(&self, from: usize) -> Vec<usize> {
        let e = self.entries.lock().expect("board poisoned");
        e[from.min(e.len())..].to_vec()
    }

    pub(crate) fn len(&self) -> usize {
        self.entries.lock().expect("board poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_lookup() {
        let s = FaultScript::new(vec![
            PlannedFailure { victim: 3, point: 17 },
            PlannedFailure { victim: 5, point: 17 },
            PlannedFailure { victim: 1, point: 99 },
        ]);
        assert_eq!(s.victims_at(17), vec![3, 5]);
        assert_eq!(s.victims_at(99), vec![1]);
        assert!(s.victims_at(0).is_empty());
        assert!(!s.is_empty());
        assert!(FaultScript::none().is_empty());
    }

    #[test]
    fn board_cursor_reads() {
        let b = Board::default();
        b.announce(2);
        b.announce(7);
        assert_eq!(b.read_from(0), vec![2, 7]);
        assert_eq!(b.read_from(1), vec![7]);
        assert_eq!(b.read_from(2), Vec::<usize>::new());
        assert_eq!(b.len(), 2);
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;

    #[test]
    fn poisson_schedule_statistics() {
        let fails = poisson_failures(100_000, 1000.0, 16, 7);
        // Expect ~100 failures; allow wide slack.
        assert!(fails.len() > 50 && fails.len() < 200, "{}", fails.len());
        // Points strictly increasing, victims in range.
        for w in fails.windows(2) {
            assert!(w[0].point < w[1].point);
        }
        assert!(fails.iter().all(|f| f.victim < 16));
        // Reproducible.
        assert_eq!(fails, poisson_failures(100_000, 1000.0, 16, 7));
    }

    #[test]
    fn poisson_empty_when_mtti_huge() {
        let fails = poisson_failures(10, 1e12, 4, 1);
        assert!(fails.is_empty());
    }
}
