//! Real multi-process transport over `std::net` TCP (localhost-oriented,
//! std-only) — the second [`Transport`] implementation next to the default
//! in-process [`crate::transport::MpscTransport`].
//!
//! ## Wire format
//!
//! Every frame is length-prefixed and self-describing:
//!
//! ```text
//! offset  size  field
//! 0       4     payload length in f64 words (u32 LE)
//! 4       1     kind: 0 = HELLO, 1 = HEARTBEAT, 2 = DATA
//! 5       3     reserved (zero)
//! 8       4     source rank (u32 LE)
//! 12      4     source incarnation (u32 LE)
//! 16      8     wire key — the encoded (Tag, Leg) mailbox (u64 LE)
//! 24      8     sender communication epoch (u64 LE)
//! 32      8·len payload (f64 LE)
//! ```
//!
//! The epoch stamped in every frame is the sender's detector epoch, so the
//! epoch fencing that drops stragglers from aborted attempts works
//! identically over TCP and over the in-process fabric. The incarnation in
//! every frame (and in the HELLO handshake that opens each connection) is
//! how a respawned replacement rank is told apart from its dead
//! predecessor: peers track the highest incarnation seen per rank, and the
//! distributed agreement discards frames from older incarnations.
//!
//! ## Topology and threads
//!
//! Rank `r` listens on `addrs[r]`; the *sender* owns the outbound
//! connection of each `(src → dst)` pair. Per endpoint:
//!
//! * one accept thread (registers inbound connections after their HELLO),
//! * one reader thread per inbound connection (frames → shared inbox),
//! * one sender thread per peer, fed by a bounded queue ([`Transport::send`]
//!   never blocks — when the queue is full because the peer is gone, frames
//!   are dropped, which is exactly the fail-stop "sends to a dead endpoint
//!   vanish" semantics of the mpsc fabric),
//! * one heartbeat thread (beats every [`TcpConfig::hb_interval`], counts
//!   missed beats per peer).
//!
//! ## Failure detection
//!
//! [`Transport::is_peer_dead`] reports a peer whose inbound connection hit
//! EOF/error and did not come back within a couple of heartbeats, or whose
//! last frame (heartbeats included) is older than
//! `hb_miss_limit × hb_interval`. A SIGKILLed process trips the EOF fast
//! path as the kernel closes its sockets; a hung one trips the silence
//! threshold. The death feeds the existing ULFM-style detector through
//! [`crate::Ctx`]'s dead-peer sweep, so agreement and recovery upstairs run
//! unchanged. Connection establishment retries with exponential backoff and
//! deterministic jitter until [`TcpConfig::conn_timeout`] is exhausted.

use crate::transport::{CommError, Msg, PeerCounters, Transport, TransportStats};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const KIND_HELLO: u8 = 0;
const KIND_HEARTBEAT: u8 = 1;
const KIND_DATA: u8 = 2;
/// Clean-shutdown announcement, sent from `Drop`. A SIGKILLed or aborted
/// process never runs `Drop`, so a GOODBYE reliably separates "finished
/// and left" from "died": a departed peer is not judged dead no matter how
/// long its sockets stay silent.
const KIND_GOODBYE: u8 = 3;
// Kinds 4..=8 belong to the serving layer's job frames (see [`jobs`]).
// They share the 32-byte header but travel on dedicated client↔daemon and
// daemon↔worker connections, never on the rank fabric; `reader_loop`
// ignores them like any other unknown kind if one ever strays there.

const HEADER_LEN: usize = 32;
/// Sanity cap on a frame's payload (words): a corrupt length prefix must
/// not turn into a multi-gigabyte allocation.
const MAX_PAYLOAD_WORDS: u32 = 1 << 28;
/// Depth of each per-peer outbound queue.
const SEND_QUEUE_DEPTH: usize = 1024;
/// Granularity at which blocking socket reads re-check the shutdown flag.
const READ_POLL: Duration = Duration::from_millis(100);

/// Knobs for a [`TcpTransport`] endpoint.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// This endpoint's rank.
    pub rank: usize,
    /// Number of ranks in the fabric.
    pub world: usize,
    /// Heartbeat period.
    pub hb_interval: Duration,
    /// Beats of silence after which a peer is suspected dead.
    pub hb_miss_limit: u32,
    /// Total budget for establishing one outbound connection (spent across
    /// exponentially backed-off, jittered attempts).
    pub conn_timeout: Duration,
    /// This process's incarnation (0 originally; respawns bump it).
    pub incarnation: u32,
    /// Seed for the backoff jitter (kept deterministic per rank).
    pub jitter_seed: u64,
    /// First reconnect backoff pause (doubles per failed attempt).
    pub backoff_init: Duration,
    /// Ceiling the exponential backoff saturates at.
    pub backoff_cap: Duration,
}

impl TcpConfig {
    /// Defaults tuned for localhost child processes: 100 ms beats, dead
    /// after 30 missed (3 s), 10 s connect budget, 10 ms → 400 ms backoff.
    /// Generous on purpose — CI boxes with a single core timeslice several
    /// ranks onto one CPU, and a starved heartbeat thread must not read as
    /// a death.
    pub fn new(rank: usize, world: usize) -> Self {
        TcpConfig {
            rank,
            world,
            hb_interval: Duration::from_millis(100),
            hb_miss_limit: 30,
            conn_timeout: Duration::from_secs(10),
            incarnation: 0,
            jitter_seed: 0x9e3779b97f4a7c15 ^ rank as u64,
            backoff_init: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(400),
        }
    }

    /// Overlay the `FT_HB_*` environment knobs onto this config:
    /// `FT_HB_INTERVAL_MS`, `FT_HB_MISS_LIMIT`, `FT_HB_BACKOFF_INIT_MS`,
    /// `FT_HB_BACKOFF_CAP_MS`. Unset variables leave the field alone; a
    /// set-but-invalid value is a configuration error the caller must
    /// surface *before* any socket work starts.
    pub fn apply_env(&mut self) -> Result<(), String> {
        fn ms(name: &str) -> Result<Option<u64>, String> {
            match std::env::var(name) {
                Ok(v) => match v.parse::<u64>() {
                    Ok(n) if n > 0 => Ok(Some(n)),
                    _ => Err(format!("{name}: '{v}' is not a positive integer of milliseconds")),
                },
                Err(_) => Ok(None),
            }
        }
        if let Some(n) = ms("FT_HB_INTERVAL_MS")? {
            self.hb_interval = Duration::from_millis(n);
        }
        if let Some(n) = ms("FT_HB_MISS_LIMIT")? {
            self.hb_miss_limit = u32::try_from(n).map_err(|_| "FT_HB_MISS_LIMIT: too large".to_string())?;
        }
        if let Some(n) = ms("FT_HB_BACKOFF_INIT_MS")? {
            self.backoff_init = Duration::from_millis(n);
        }
        if let Some(n) = ms("FT_HB_BACKOFF_CAP_MS")? {
            self.backoff_cap = Duration::from_millis(n);
        }
        self.validate()
    }

    /// Reject inconsistent liveness settings up front — a zero interval
    /// spins the beat thread, a zero miss limit declares everyone dead, and
    /// an inverted backoff range would make the "exponential" pause shrink.
    pub fn validate(&self) -> Result<(), String> {
        if self.hb_interval.is_zero() {
            return Err("heartbeat interval must be positive".into());
        }
        if self.hb_miss_limit == 0 {
            return Err("heartbeat miss limit must be at least 1".into());
        }
        if self.conn_timeout.is_zero() {
            return Err("connect timeout must be positive".into());
        }
        if self.backoff_init.is_zero() || self.backoff_cap < self.backoff_init {
            return Err(format!(
                "reconnect backoff range {} ms → {} ms is invalid (need 0 < init <= cap)",
                self.backoff_init.as_millis(),
                self.backoff_cap.as_millis()
            ));
        }
        Ok(())
    }
}

#[derive(Default)]
struct Counters {
    frames_tx: AtomicU64,
    bytes_tx: AtomicU64,
    frames_rx: AtomicU64,
    bytes_rx: AtomicU64,
    retries: AtomicU64,
    reconnects: AtomicU64,
    hb_misses: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> PeerCounters {
        PeerCounters {
            frames_tx: self.frames_tx.load(Ordering::Relaxed),
            bytes_tx: self.bytes_tx.load(Ordering::Relaxed),
            frames_rx: self.frames_rx.load(Ordering::Relaxed),
            bytes_rx: self.bytes_rx.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            hb_misses: self.hb_misses.load(Ordering::Relaxed),
        }
    }
}

struct PeerState {
    /// Milliseconds (since transport start) of the last frame from this
    /// peer; 0 = never heard from them.
    last_seen_ms: AtomicU64,
    /// The current inbound connection is live (HELLO seen, no EOF yet).
    inbound_alive: AtomicBool,
    /// Generation of the current inbound connection, so a stale reader's
    /// EOF cannot clobber the state of its replacement connection.
    conn_gen: AtomicU64,
    /// Highest incarnation seen from this rank.
    incarnation: AtomicU32,
    /// The peer announced a clean shutdown (GOODBYE frame): silence and
    /// EOF from it are departure, not death. Cleared when a later
    /// incarnation's HELLO re-opens the slot.
    departed: AtomicBool,
    counters: Counters,
}

struct Shared {
    rank: usize,
    incarnation: u32,
    start: Instant,
    hb_interval: Duration,
    hb_miss_limit: u32,
    backoff_init: Duration,
    backoff_cap: Duration,
    shutdown: AtomicBool,
    peers: Vec<PeerState>,
    inbox_tx: Mutex<Sender<Msg>>,
}

impl Shared {
    fn now_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    fn touch(&self, peer: usize) {
        self.peers[peer].last_seen_ms.store(self.now_ms().max(1), Ordering::Relaxed);
    }

    fn done(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }
}

enum Outbound {
    Frame(Msg),
    Heartbeat,
    Goodbye,
}

/// TCP endpoint: see the module docs for wire format and thread layout.
pub struct TcpTransport {
    shared: Arc<Shared>,
    addrs: Vec<SocketAddr>,
    conn_timeout: Duration,
    inbox_rx: Receiver<Msg>,
    senders: Vec<Option<SyncSender<Outbound>>>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl TcpTransport {
    /// Bind `127.0.0.1:(port_base + rank)` and connect the endpoint into a
    /// fabric whose rank `i` listens on `port_base + i`. The bind retries
    /// for up to `conn_timeout` so a respawned replacement can win its
    /// predecessor's port back from the kernel.
    pub fn connect(cfg: TcpConfig, port_base: u16) -> io::Result<TcpTransport> {
        let addrs: Vec<SocketAddr> = (0..cfg.world)
            .map(|r| SocketAddr::from(([127, 0, 0, 1], port_base + r as u16)))
            .collect();
        let deadline = Instant::now() + cfg.conn_timeout;
        let listener = loop {
            match TcpListener::bind(addrs[cfg.rank]) {
                Ok(l) => break l,
                Err(e) if Instant::now() < deadline => {
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(50));
                }
                Err(e) => return Err(e),
            }
        };
        Self::with_listener(cfg, addrs, listener)
    }

    /// Build a fully connected localhost fabric of `n` endpoints on
    /// ephemeral ports — the in-process test harness for the real wire.
    /// Liveness thresholds are made very generous (30 s) because the
    /// fabric's ranks are threads of one process sharing however few CPUs
    /// the test host has: nobody in these fabrics dies for real, so fast
    /// detection buys nothing and scheduler starvation must not look like
    /// a death. Death-detection tests build their own tight configs via
    /// [`TcpTransport::with_listener`].
    pub fn fabric_localhost(n: usize) -> io::Result<Vec<TcpTransport>> {
        let listeners: Vec<TcpListener> = (0..n).map(|_| TcpListener::bind("127.0.0.1:0")).collect::<io::Result<_>>()?;
        let addrs: Vec<SocketAddr> = listeners.iter().map(|l| l.local_addr()).collect::<io::Result<_>>()?;
        listeners
            .into_iter()
            .enumerate()
            .map(|(rank, l)| {
                let mut cfg = TcpConfig::new(rank, n);
                cfg.hb_interval = Duration::from_millis(500);
                cfg.hb_miss_limit = 60;
                Self::with_listener(cfg, addrs.clone(), l)
            })
            .collect()
    }

    /// Assemble an endpoint from an already-bound listener plus the full
    /// rank → address map.
    pub fn with_listener(cfg: TcpConfig, addrs: Vec<SocketAddr>, listener: TcpListener) -> io::Result<TcpTransport> {
        assert_eq!(addrs.len(), cfg.world, "one address per rank");
        assert!(cfg.rank < cfg.world, "rank outside the world");
        let (inbox_tx, inbox_rx) = channel();
        let shared = Arc::new(Shared {
            rank: cfg.rank,
            incarnation: cfg.incarnation,
            start: Instant::now(),
            hb_interval: cfg.hb_interval,
            hb_miss_limit: cfg.hb_miss_limit,
            backoff_init: cfg.backoff_init,
            backoff_cap: cfg.backoff_cap,
            shutdown: AtomicBool::new(false),
            peers: (0..cfg.world)
                .map(|_| PeerState {
                    last_seen_ms: AtomicU64::new(0),
                    inbound_alive: AtomicBool::new(false),
                    conn_gen: AtomicU64::new(0),
                    incarnation: AtomicU32::new(0),
                    departed: AtomicBool::new(false),
                    counters: Counters::default(),
                })
                .collect(),
            inbox_tx: Mutex::new(inbox_tx),
        });
        let mut threads = Vec::new();

        listener.set_nonblocking(true)?;
        {
            let shared = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || accept_loop(shared, listener)));
        }

        let mut senders: Vec<Option<SyncSender<Outbound>>> = Vec::with_capacity(cfg.world);
        for (dst, &addr) in addrs.iter().enumerate() {
            if dst == cfg.rank {
                senders.push(None);
                continue;
            }
            let (tx, rx) = std::sync::mpsc::sync_channel(SEND_QUEUE_DEPTH);
            let shared = Arc::clone(&shared);
            let conn_timeout = cfg.conn_timeout;
            let jitter_seed = cfg.jitter_seed ^ (dst as u64).wrapping_mul(0xbf58476d1ce4e5b9);
            threads.push(std::thread::spawn(move || sender_loop(shared, dst, addr, conn_timeout, jitter_seed, rx)));
            senders.push(Some(tx));
        }

        {
            let shared = Arc::clone(&shared);
            let hb_senders: Vec<Option<SyncSender<Outbound>>> = senders.clone();
            threads.push(std::thread::spawn(move || heartbeat_loop(shared, hb_senders)));
        }

        Ok(TcpTransport {
            shared,
            addrs,
            conn_timeout: cfg.conn_timeout,
            inbox_rx,
            senders,
            threads: Mutex::new(threads),
        })
    }

    /// The rank → address map this endpoint was built with.
    pub fn addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// Total budget for establishing one outbound connection.
    pub fn conn_timeout(&self) -> Duration {
        self.conn_timeout
    }

    fn dead_after_ms(&self) -> u64 {
        (self.shared.hb_miss_limit as u64).max(1) * self.shared.hb_interval.as_millis().max(1) as u64
    }
}

impl Transport for TcpTransport {
    fn rank(&self) -> usize {
        self.shared.rank
    }

    fn world_size(&self) -> usize {
        self.shared.peers.len()
    }

    fn send(&self, dst: usize, msg: Msg) {
        if self.shared.done() {
            return;
        }
        if dst == self.shared.rank {
            // Self-delivery short-circuits the wire, like the mpsc fabric.
            let _ = self.shared.inbox_tx.lock().expect("inbox poisoned").send(msg);
            return;
        }
        if let Some(tx) = &self.senders[dst] {
            match tx.try_send(Outbound::Frame(msg)) {
                Ok(()) | Err(TrySendError::Disconnected(_)) => {}
                // Queue full: the peer is not draining (dead or wedged).
                // Fail-stop semantics — the frame vanishes.
                Err(TrySendError::Full(_)) => {}
            }
        }
    }

    fn recv(&self, timeout: Duration) -> Result<Msg, CommError> {
        if self.shared.done() {
            return Err(CommError::Closed);
        }
        match self.inbox_rx.recv_timeout(timeout) {
            Ok(m) => Ok(m),
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => Err(CommError::Timeout),
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => Err(CommError::Closed),
        }
    }

    fn close(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
    }

    fn is_peer_dead(&self, peer: usize) -> bool {
        if peer == self.shared.rank {
            return self.shared.done();
        }
        let st = &self.shared.peers[peer];
        if st.departed.load(Ordering::Acquire) {
            return false; // announced a clean shutdown: gone, not dead
        }
        let last = st.last_seen_ms.load(Ordering::Relaxed);
        if last == 0 {
            return false; // never heard from them: absent, not dead
        }
        let silent = self.shared.now_ms().saturating_sub(last);
        let hb_ms = self.shared.hb_interval.as_millis().max(1) as u64;
        if !st.inbound_alive.load(Ordering::Acquire) && silent > 2 * hb_ms {
            return true; // EOF observed (e.g. SIGKILL) and no reconnect
        }
        silent > self.dead_after_ms()
    }

    fn incarnation(&self) -> u32 {
        self.shared.incarnation
    }

    fn peer_incarnation(&self, peer: usize) -> u32 {
        if peer == self.shared.rank {
            self.shared.incarnation
        } else {
            self.shared.peers[peer].incarnation.load(Ordering::Acquire)
        }
    }

    fn stats(&self) -> TransportStats {
        TransportStats {
            peers: self.shared.peers.iter().map(|p| p.counters.snapshot()).collect(),
        }
    }
}

impl TcpTransport {
    fn teardown(&mut self, goodbye: bool) {
        // Announce the clean shutdown before anything closes: sender
        // threads drain their queues to already-established streams even
        // during teardown, so peers learn this exit was deliberate and
        // never mistake the ensuing EOF + silence for a death.
        if goodbye {
            for s in self.senders.iter().flatten() {
                let _ = s.try_send(Outbound::Goodbye);
            }
        }
        self.shared.shutdown.store(true, Ordering::Release);
        // Disconnect the outbound queues so sender threads wake from recv.
        for s in self.senders.iter_mut() {
            *s = None;
        }
        let threads = std::mem::take(&mut *self.threads.lock().expect("threads poisoned"));
        for t in threads {
            let _ = t.join();
        }
    }

    /// Tear down without the GOODBYE announcement — the unit-test stand-in
    /// for a process death (a real SIGKILL never runs `Drop` at all).
    #[cfg(test)]
    fn drop_abruptly(mut self) {
        self.teardown(false);
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.teardown(true);
    }
}

// --- framing ----------------------------------------------------------------

fn encode_frame(kind: u8, src: usize, incarnation: u32, wire: u64, epoch: u64, payload: &[f64]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(HEADER_LEN + 8 * payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.push(kind);
    buf.extend_from_slice(&[0u8; 3]);
    buf.extend_from_slice(&(src as u32).to_le_bytes());
    buf.extend_from_slice(&incarnation.to_le_bytes());
    buf.extend_from_slice(&wire.to_le_bytes());
    buf.extend_from_slice(&epoch.to_le_bytes());
    for v in payload {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    buf
}

struct Frame {
    kind: u8,
    src: usize,
    incarnation: u32,
    wire: u64,
    epoch: u64,
    payload: Arc<[f64]>,
}

/// `read_exact` that survives the read-timeout polls used for shutdown
/// checks: a timeout mid-frame keeps filling the same buffer, so the
/// stream never desynchronizes. Returns `Ok(false)` on a clean shutdown
/// observed before any byte of the buffer arrived.
fn read_full(shared: &Shared, stream: &mut TcpStream, buf: &mut [u8]) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "peer closed")),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
                if shared.done() && filled == 0 {
                    return Ok(false);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

fn read_frame(shared: &Shared, stream: &mut TcpStream) -> io::Result<Option<Frame>> {
    let mut header = [0u8; HEADER_LEN];
    if !read_full(shared, stream, &mut header)? {
        return Ok(None);
    }
    let words = u32::from_le_bytes(header[0..4].try_into().unwrap());
    if words > MAX_PAYLOAD_WORDS {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "frame length out of range"));
    }
    let kind = header[4];
    let src = u32::from_le_bytes(header[8..12].try_into().unwrap()) as usize;
    let incarnation = u32::from_le_bytes(header[12..16].try_into().unwrap());
    let wire = u64::from_le_bytes(header[16..24].try_into().unwrap());
    let epoch = u64::from_le_bytes(header[24..32].try_into().unwrap());
    let mut raw = vec![0u8; 8 * words as usize];
    if !read_full(shared, stream, &mut raw)? {
        return Ok(None);
    }
    let payload: Arc<[f64]> = raw
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect::<Vec<f64>>()
        .into();
    Ok(Some(Frame { kind, src, incarnation, wire, epoch, payload }))
}

// --- job frames (serving layer) ---------------------------------------------

/// Job-stream framing for the persistent solver service.
///
/// The serving layer (`crates/serve`) reuses the transport's 32-byte frame
/// header verbatim, with the fields re-purposed for job routing:
///
/// ```text
/// header field        job-frame meaning
/// kind                SUBMIT / ACCEPT / RESULT / REJECT / CKPT
/// source rank         tenant id
/// source incarnation  unused (0)
/// wire key            job id
/// sender epoch        request sequence number (echoed in replies)
/// payload             f64 words, grammar per kind (see crates/serve)
/// ```
///
/// Job frames travel on their own client↔daemon and daemon↔worker
/// connections — never on the rank fabric — so they need a plain blocking
/// reader rather than the fabric's shutdown-polling [`read_full`].
pub mod jobs {
    use super::{HEADER_LEN, MAX_PAYLOAD_WORDS};
    use std::io::{self, Read, Write};
    use std::net::TcpStream;

    /// Submit a job (client → daemon) or assign one (daemon → worker).
    pub const KIND_SUBMIT: u8 = 4;
    /// Admission acknowledgement carrying the allocated job id; also the
    /// worker → daemon registration frame (job field = pool slot).
    pub const KIND_ACCEPT: u8 = 5;
    /// Completed-job payload (worker → daemon → client).
    pub const KIND_RESULT: u8 = 6;
    /// Typed rejection: backpressure, quota, malformed spec, or a job that
    /// failed beyond the code distance. Payload starts with a reason code.
    pub const KIND_REJECT: u8 = 7;
    /// Checkpoint upload (worker → daemon): one rank's serialized
    /// `FtCheckpoint` image at a scope boundary.
    pub const KIND_CKPT: u8 = 8;

    /// One frame of the job stream.
    #[derive(Debug, Clone, PartialEq)]
    pub struct JobFrame {
        /// One of the `KIND_*` constants above.
        pub kind: u8,
        /// Tenant id (rides the header's source-rank field).
        pub tenant: u32,
        /// Job id (rides the header's wire-key field).
        pub job: u64,
        /// Request sequence number (rides the header's epoch field);
        /// replies echo the sequence of the request they answer.
        pub seq: u64,
        /// Frame body, grammar per kind.
        pub payload: Vec<f64>,
    }

    /// Serialize and send one job frame.
    pub fn write_job_frame(stream: &mut TcpStream, frame: &JobFrame) -> io::Result<()> {
        debug_assert!((KIND_SUBMIT..=KIND_CKPT).contains(&frame.kind), "frame kind {} is not a job kind", frame.kind);
        let buf = super::encode_frame(frame.kind, frame.tenant as usize, 0, frame.job, frame.seq, &frame.payload);
        stream.write_all(&buf)?;
        stream.flush()
    }

    /// Blocking read of one job frame. Errors on EOF, a malformed header,
    /// or a kind outside the job range (a fabric frame straying onto a job
    /// connection is a protocol violation, not data).
    pub fn read_job_frame(stream: &mut TcpStream) -> io::Result<JobFrame> {
        let mut header = [0u8; HEADER_LEN];
        stream.read_exact(&mut header)?;
        let words = u32::from_le_bytes(header[0..4].try_into().unwrap());
        if words > MAX_PAYLOAD_WORDS {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "job frame length out of range"));
        }
        let kind = header[4];
        if !(KIND_SUBMIT..=KIND_CKPT).contains(&kind) {
            return Err(io::Error::new(io::ErrorKind::InvalidData, format!("frame kind {kind} is not a job frame")));
        }
        let tenant = u32::from_le_bytes(header[8..12].try_into().unwrap());
        let job = u64::from_le_bytes(header[16..24].try_into().unwrap());
        let seq = u64::from_le_bytes(header[24..32].try_into().unwrap());
        let mut raw = vec![0u8; 8 * words as usize];
        stream.read_exact(&mut raw)?;
        let payload = raw
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect::<Vec<f64>>();
        Ok(JobFrame { kind, tenant, job, seq, payload })
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::net::TcpListener;

        #[test]
        fn job_frames_round_trip_over_a_socket() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let sent = JobFrame {
                kind: KIND_SUBMIT,
                tenant: 42,
                job: 7,
                seq: 3,
                payload: vec![1.0, -2.5, std::f64::consts::PI],
            };
            let tx = sent.clone();
            let writer = std::thread::spawn(move || {
                let mut s = TcpStream::connect(addr).unwrap();
                write_job_frame(&mut s, &tx).unwrap();
                // Empty payloads are legal (pure control frames).
                write_job_frame(
                    &mut s,
                    &JobFrame {
                        kind: KIND_ACCEPT,
                        tenant: 0,
                        job: 9,
                        seq: 4,
                        payload: vec![],
                    },
                )
                .unwrap();
            });
            let (mut s, _) = listener.accept().unwrap();
            let got = read_job_frame(&mut s).unwrap();
            assert_eq!(got, sent);
            let ctl = read_job_frame(&mut s).unwrap();
            assert_eq!((ctl.kind, ctl.job, ctl.seq, ctl.payload.len()), (KIND_ACCEPT, 9, 4, 0));
            writer.join().unwrap();
        }

        #[test]
        fn fabric_kinds_are_rejected_on_job_connections() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let writer = std::thread::spawn(move || {
                let mut s = TcpStream::connect(addr).unwrap();
                // A DATA frame (kind 2) must not parse as a job frame.
                let buf = crate::tcp::encode_frame(super::super::KIND_DATA, 1, 0, 5, 0, &[1.0]);
                use std::io::Write;
                s.write_all(&buf).unwrap();
            });
            let (mut s, _) = listener.accept().unwrap();
            let err = read_job_frame(&mut s).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData);
            writer.join().unwrap();
        }
    }
}

// --- threads ----------------------------------------------------------------

fn accept_loop(shared: Arc<Shared>, listener: TcpListener) {
    while !shared.done() {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(&shared);
                // Handshake + reads happen off the accept thread so one
                // slow peer cannot block admission of the others.
                std::thread::spawn(move || reader_loop(shared, stream));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn reader_loop(shared: Arc<Shared>, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_POLL));
    // The connection opens with the peer's HELLO.
    let hello = match read_frame(&shared, &mut stream) {
        Ok(Some(f)) if f.kind == KIND_HELLO && f.src < shared.peers.len() => f,
        _ => return,
    };
    let src = hello.src;
    let st = &shared.peers[src];
    // A stale incarnation must not resurrect a rank its replacement owns.
    if hello.incarnation < st.incarnation.load(Ordering::Acquire) {
        return;
    }
    if hello.incarnation > st.incarnation.load(Ordering::Acquire) {
        // A fresh incarnation re-opens a slot its predecessor vacated.
        st.departed.store(false, Ordering::Release);
    }
    st.incarnation.store(hello.incarnation, Ordering::Release);
    let my_gen = st.conn_gen.fetch_add(1, Ordering::AcqRel) + 1;
    st.inbound_alive.store(true, Ordering::Release);
    shared.touch(src);
    st.counters.frames_rx.fetch_add(1, Ordering::Relaxed);
    st.counters.bytes_rx.fetch_add(HEADER_LEN as u64, Ordering::Relaxed);

    while !shared.done() {
        match read_frame(&shared, &mut stream) {
            Ok(Some(f)) => {
                shared.touch(src);
                st.counters.frames_rx.fetch_add(1, Ordering::Relaxed);
                st.counters
                    .bytes_rx
                    .fetch_add((HEADER_LEN + 8 * f.payload.len()) as u64, Ordering::Relaxed);
                if f.incarnation > st.incarnation.load(Ordering::Acquire) {
                    st.incarnation.store(f.incarnation, Ordering::Release);
                }
                if f.kind == KIND_DATA {
                    let msg = Msg { src, wire: f.wire, epoch: f.epoch, payload: f.payload };
                    if shared.inbox_tx.lock().expect("inbox poisoned").send(msg).is_err() {
                        break;
                    }
                } else if f.kind == KIND_GOODBYE {
                    st.departed.store(true, Ordering::Release);
                }
            }
            Ok(None) => break, // shutdown
            Err(_) => break,   // EOF or hard error: the peer is gone
        }
    }
    // Only the *current* connection's reader may declare the peer down.
    if st.conn_gen.load(Ordering::Acquire) == my_gen {
        st.inbound_alive.store(false, Ordering::Release);
    }
}

/// Deterministic xorshift jitter in `[0.5, 1.5)` of `base`.
fn jittered(base: Duration, state: &mut u64) -> Duration {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    let frac = (*state >> 11) as f64 / (1u64 << 53) as f64;
    base.mul_f64(0.5 + frac)
}

fn establish(
    shared: &Shared,
    dst: usize,
    addr: SocketAddr,
    conn_timeout: Duration,
    jitter: &mut u64,
    ever_connected: bool,
) -> Option<TcpStream> {
    let deadline = Instant::now() + conn_timeout;
    let mut backoff = shared.backoff_init;
    let mut attempt = 0u64;
    loop {
        // During teardown the budget shrinks to two quick attempts: a frame
        // queued before close still deserves its flush even to a peer this
        // sender never connected to (its ARRIVE/GOODBYE may be the one
        // frame that lets a waiter finish), but a gone peer — localhost
        // refuses instantly — must not wedge the joining dropper.
        if shared.done() && attempt >= 2 {
            return None;
        }
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return None;
        }
        attempt += 1;
        if attempt > 1 {
            shared.peers[dst].counters.retries.fetch_add(1, Ordering::Relaxed);
        }
        let per_attempt = remaining.min(Duration::from_millis(250));
        if let Ok(mut stream) = TcpStream::connect_timeout(&addr, per_attempt) {
            let _ = stream.set_nodelay(true);
            let hello = encode_frame(KIND_HELLO, shared.rank, shared.incarnation, 0, 0, &[]);
            if stream.write_all(&hello).is_ok() {
                let c = &shared.peers[dst].counters;
                c.frames_tx.fetch_add(1, Ordering::Relaxed);
                c.bytes_tx.fetch_add(hello.len() as u64, Ordering::Relaxed);
                if ever_connected {
                    c.reconnects.fetch_add(1, Ordering::Relaxed);
                }
                return Some(stream);
            }
        }
        let pause = jittered(backoff, jitter).min(deadline.saturating_duration_since(Instant::now()));
        std::thread::sleep(pause);
        backoff = (backoff * 2).min(shared.backoff_cap);
    }
}

fn sender_loop(
    shared: Arc<Shared>,
    dst: usize,
    addr: SocketAddr,
    conn_timeout: Duration,
    mut jitter: u64,
    rx: Receiver<Outbound>,
) {
    let mut stream: Option<TcpStream> = None;
    let mut ever_connected = false;
    // Keeps draining after shutdown: frames queued before close() must
    // still reach the wire (a rank leaves a barrier as soon as it has
    // *heard* everyone — its own final ARRIVE may still sit in this
    // queue, and dropping it would read as a death to the peers). The
    // drain is bounded: `establish` refuses new connections once
    // shutdown is set, and the queue stops growing because `send`
    // rejects new frames.
    while let Ok(out) = rx.recv() {
        let buf = match out {
            Outbound::Heartbeat => {
                if shared.done() {
                    continue; // beats are pointless during teardown
                }
                encode_frame(KIND_HEARTBEAT, shared.rank, shared.incarnation, 0, 0, &[])
            }
            Outbound::Frame(m) => encode_frame(KIND_DATA, shared.rank, shared.incarnation, m.wire, m.epoch, &m.payload),
            Outbound::Goodbye => encode_frame(KIND_GOODBYE, shared.rank, shared.incarnation, 0, 0, &[]),
        };
        // Two establishment cycles per frame at most: a stale stream whose
        // peer died gets one reconnect; if that fails too the frame is
        // dropped (fail-stop) and the next frame starts fresh.
        for _ in 0..2 {
            if stream.is_none() {
                stream = establish(&shared, dst, addr, conn_timeout, &mut jitter, ever_connected);
                if stream.is_some() {
                    ever_connected = true;
                }
            }
            match &mut stream {
                Some(s) => match s.write_all(&buf) {
                    Ok(()) => {
                        let c = &shared.peers[dst].counters;
                        c.frames_tx.fetch_add(1, Ordering::Relaxed);
                        c.bytes_tx.fetch_add(buf.len() as u64, Ordering::Relaxed);
                        break;
                    }
                    Err(_) => stream = None, // retry once on a fresh stream
                },
                None => break, // couldn't connect within budget: drop frame
            }
        }
    }
}

fn heartbeat_loop(shared: Arc<Shared>, senders: Vec<Option<SyncSender<Outbound>>>) {
    let hb_ms = shared.hb_interval.as_millis().max(1) as u64;
    while !shared.done() {
        std::thread::sleep(shared.hb_interval);
        for (peer, tx) in senders.iter().enumerate() {
            let Some(tx) = tx else { continue };
            // Best effort: a full queue means the sender is wedged on a
            // dead peer; skipping the beat is fine.
            let _ = tx.try_send(Outbound::Heartbeat);
            let st = &shared.peers[peer];
            let last = st.last_seen_ms.load(Ordering::Relaxed);
            if last != 0 && shared.now_ms().saturating_sub(last) > hb_ms {
                st.counters.hb_misses.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(src: usize, wire: u64, vals: &[f64]) -> Msg {
        Msg { src, wire, epoch: 0, payload: Arc::from(vals) }
    }

    #[test]
    fn config_validation_rejects_inconsistent_liveness_settings() {
        let ok = TcpConfig::new(0, 2);
        assert!(ok.validate().is_ok());
        let mut c = ok.clone();
        c.hb_interval = Duration::ZERO;
        assert!(c.validate().is_err());
        let mut c = ok.clone();
        c.hb_miss_limit = 0;
        assert!(c.validate().is_err());
        let mut c = ok.clone();
        c.conn_timeout = Duration::ZERO;
        assert!(c.validate().is_err());
        let mut c = ok.clone();
        c.backoff_init = Duration::from_millis(500); // > 400 ms cap
        assert!(c.validate().is_err());
        let mut c = ok;
        c.backoff_init = Duration::ZERO;
        assert!(c.validate().is_err());
    }

    #[test]
    fn tcp_fabric_routes_and_preserves_pairwise_order() {
        let mut eps = TcpTransport::fabric_localhost(3).unwrap();
        let c = eps.remove(2);
        let b = eps.remove(1);
        let a = eps.remove(0);
        assert_eq!(a.world_size(), 3);
        assert_eq!(c.rank(), 2);

        a.send(2, msg(0, 1, &[1.0]));
        a.send(2, msg(0, 1, &[2.0]));
        b.send(2, msg(1, 9, &[3.0]));

        let mut from_a = Vec::new();
        for _ in 0..3 {
            let m = c.recv(Duration::from_secs(10)).expect("message lost");
            if m.src == 0 {
                from_a.push(m.payload[0]);
            } else {
                assert_eq!((m.wire, m.payload[0]), (9, 3.0));
            }
        }
        assert_eq!(from_a, vec![1.0, 2.0], "pairwise order violated");
    }

    #[test]
    fn tcp_payload_roundtrips_bitwise() {
        let mut eps = TcpTransport::fabric_localhost(2).unwrap();
        let b = eps.remove(1);
        let a = eps.remove(0);
        let vals = [1.5e-308, -0.0, f64::MAX, std::f64::consts::PI, -1.0 / 3.0];
        a.send(
            1,
            Msg {
                src: 0,
                wire: 42,
                epoch: 7,
                payload: Arc::from(vals.as_slice()),
            },
        );
        let m = b.recv(Duration::from_secs(10)).unwrap();
        assert_eq!(m.src, 0);
        assert_eq!(m.wire, 42);
        assert_eq!(m.epoch, 7);
        assert_eq!(m.payload.len(), vals.len());
        for (x, y) in m.payload.iter().zip(vals.iter()) {
            assert_eq!(x.to_bits(), y.to_bits(), "payload not bitwise-identical");
        }
    }

    #[test]
    fn tcp_recv_timeout_is_typed_and_bounded() {
        let mut eps = TcpTransport::fabric_localhost(2).unwrap();
        let _b = eps.remove(1);
        let a = eps.remove(0);
        let t0 = Instant::now();
        let r = a.recv(Duration::from_millis(100));
        assert_eq!(r.err().map(|e| matches!(e, CommError::Timeout)), Some(true));
        assert!(t0.elapsed() < Duration::from_secs(5), "timeout not bounded");
    }

    #[test]
    fn tcp_counts_traffic_per_peer() {
        let mut eps = TcpTransport::fabric_localhost(2).unwrap();
        let b = eps.remove(1);
        let a = eps.remove(0);
        a.send(1, msg(0, 1, &[1.0, 2.0, 3.0]));
        let _ = b.recv(Duration::from_secs(10)).unwrap();
        // The sender thread bumps its counters just after the write hits
        // the kernel, so the receiver can observe the frame first: poll.
        let t0 = Instant::now();
        loop {
            let s = a.stats();
            if s.peers[1].frames_tx >= 1 && s.peers[1].bytes_tx >= (HEADER_LEN + 24) as u64 {
                break;
            }
            assert!(t0.elapsed() < Duration::from_secs(10), "tx traffic not counted");
            std::thread::sleep(Duration::from_millis(10));
        }
        let s = b.stats();
        assert!(s.peers[0].frames_rx >= 1, "rx frame not counted");
        assert_eq!(s.peers[1], PeerCounters::default(), "phantom traffic on silent peer");
    }

    #[test]
    fn tcp_detects_a_dropped_peer() {
        let mut cfgs: Vec<TcpConfig> = (0..2).map(|r| TcpConfig::new(r, 2)).collect();
        for c in &mut cfgs {
            c.hb_interval = Duration::from_millis(20);
            c.hb_miss_limit = 4;
        }
        let listeners: Vec<TcpListener> = (0..2).map(|_| TcpListener::bind("127.0.0.1:0").unwrap()).collect();
        let addrs: Vec<SocketAddr> = listeners.iter().map(|l| l.local_addr().unwrap()).collect();
        let mut eps: Vec<TcpTransport> = cfgs
            .into_iter()
            .zip(listeners)
            .map(|(c, l)| TcpTransport::with_listener(c, addrs.clone(), l).unwrap())
            .collect();
        let b = eps.remove(1);
        let a = eps.remove(0);
        // Traffic both ways so each side has heard from the other.
        a.send(1, msg(0, 1, &[1.0]));
        b.send(0, msg(1, 1, &[2.0]));
        let _ = a.recv(Duration::from_secs(10)).unwrap();
        let _ = b.recv(Duration::from_secs(10)).unwrap();
        assert!(!a.is_peer_dead(1));
        b.drop_abruptly(); // sockets close with no GOODBYE: EOF fast path
        let t0 = Instant::now();
        while !a.is_peer_dead(1) {
            assert!(t0.elapsed() < Duration::from_secs(10), "death never detected");
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    #[test]
    fn tcp_goodbye_separates_departure_from_death() {
        let mut cfgs: Vec<TcpConfig> = (0..2).map(|r| TcpConfig::new(r, 2)).collect();
        for c in &mut cfgs {
            c.hb_interval = Duration::from_millis(20);
            c.hb_miss_limit = 4;
        }
        let listeners: Vec<TcpListener> = (0..2).map(|_| TcpListener::bind("127.0.0.1:0").unwrap()).collect();
        let addrs: Vec<SocketAddr> = listeners.iter().map(|l| l.local_addr().unwrap()).collect();
        let mut eps: Vec<TcpTransport> = cfgs
            .into_iter()
            .zip(listeners)
            .map(|(c, l)| TcpTransport::with_listener(c, addrs.clone(), l).unwrap())
            .collect();
        let b = eps.remove(1);
        let a = eps.remove(0);
        a.send(1, msg(0, 1, &[1.0]));
        b.send(0, msg(1, 1, &[2.0]));
        let _ = a.recv(Duration::from_secs(10)).unwrap();
        let _ = b.recv(Duration::from_secs(10)).unwrap();
        drop(b); // graceful exit: GOODBYE travels over the live stream
                 // Far past both the EOF (2 beats) and silence (4 beats) windows.
        std::thread::sleep(Duration::from_millis(400));
        assert!(!a.is_peer_dead(1), "clean shutdown misread as a death");
    }

    #[test]
    fn tcp_unreachable_peer_never_hangs_sender() {
        // Rank 1's address points at a port nobody listens on: sends must
        // drop after the bounded connect budget, not wedge the caller.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let my_addr = listener.local_addr().unwrap();
        let dead_port = {
            let probe = TcpListener::bind("127.0.0.1:0").unwrap();
            probe.local_addr().unwrap().port()
            // probe drops here; the port is free and silent
        };
        let mut cfg = TcpConfig::new(0, 2);
        cfg.conn_timeout = Duration::from_millis(200);
        let addrs = vec![my_addr, SocketAddr::from(([127, 0, 0, 1], dead_port))];
        let t = TcpTransport::with_listener(cfg, addrs, listener).unwrap();
        let t0 = Instant::now();
        t.send(1, msg(0, 1, &[1.0])); // must not block
        assert!(t0.elapsed() < Duration::from_secs(1), "send blocked on a dead peer");
        assert_eq!(
            t.recv(Duration::from_millis(100))
                .err()
                .map(|e| matches!(e, CommError::Timeout)),
            Some(true)
        );
        // The sender burned its connect budget in retries.
        let t0 = Instant::now();
        while t.stats().peers[1].retries == 0 {
            assert!(t0.elapsed() < Duration::from_secs(5), "no connect retries recorded");
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(!t.is_peer_dead(1), "never-seen peer misreported as dead");
    }

    #[test]
    fn tcp_incarnation_travels_in_the_handshake() {
        let listeners: Vec<TcpListener> = (0..2).map(|_| TcpListener::bind("127.0.0.1:0").unwrap()).collect();
        let addrs: Vec<SocketAddr> = listeners.iter().map(|l| l.local_addr().unwrap()).collect();
        let mut it = listeners.into_iter();
        let mut cfg0 = TcpConfig::new(0, 2);
        cfg0.incarnation = 3;
        let a = TcpTransport::with_listener(cfg0, addrs.clone(), it.next().unwrap()).unwrap();
        let b = TcpTransport::with_listener(TcpConfig::new(1, 2), addrs, it.next().unwrap()).unwrap();
        assert_eq!(a.incarnation(), 3);
        a.send(1, msg(0, 5, &[1.0]));
        let _ = b.recv(Duration::from_secs(10)).unwrap();
        assert_eq!(b.peer_incarnation(0), 3, "handshake incarnation lost");
    }
}
