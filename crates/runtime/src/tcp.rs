//! Real multi-process transport over `std::net` TCP (localhost-oriented,
//! std-only) — the second [`Transport`] implementation next to the default
//! in-process [`crate::transport::MpscTransport`].
//!
//! ## Wire format (v2: integrity + sequencing)
//!
//! Every frame is length-prefixed, self-describing, and CRC-protected:
//!
//! ```text
//! offset  size  field
//! 0       4     payload length in f64 words (u32 LE)
//! 4       1     kind: 0 HELLO, 1 HEARTBEAT, 2 DATA, 3 GOODBYE,
//!               9 HELLO_ACK, 10 ACK, 11 NAK (4..=8: job frames)
//! 5       3     reserved (zero)
//! 8       4     source rank (u32 LE)
//! 12      4     source incarnation (u32 LE)
//! 16      8     wire key — the encoded (Tag, Leg) mailbox (u64 LE)
//! 24      8     sender communication epoch (u64 LE)
//! 32      8     per-link sequence number (u64 LE; 0 = unsequenced)
//! 40      4     CRC32 (IEEE) of the whole frame with this field zeroed
//! 44      4     CRC32 (IEEE) of header bytes 0..40 (checked before the
//!               length prefix is trusted)
//! 48      8·len payload (f64 LE)
//! ```
//!
//! The epoch stamped in every frame is the sender's detector epoch, so the
//! epoch fencing that drops stragglers from aborted attempts works
//! identically over TCP and over the in-process fabric. The incarnation in
//! every frame (and in the HELLO handshake that opens each connection) is
//! how a respawned replacement rank is told apart from its dead
//! predecessor.
//!
//! ## Reliability: go-back-N with session resume
//!
//! DATA frames carry a per-`(src → dst)` sequence number starting at 1.
//! The sender keeps every unacknowledged frame in a bounded in-flight
//! window ([`TcpConfig::net_window`]); the receiver delivers strictly in
//! sequence, answers each delivery with a cumulative ACK, suppresses
//! duplicates, and NAKs the first gap it observes. A NAK — or a window
//! whose head has gone stale — rewinds the sender (go-back-N). When a
//! connection dies mid-stream, the sender reconnects and the HELLO /
//! HELLO_ACK handshake resumes the session: the receiver announces the
//! highest sequence it delivered and the sender replays everything after
//! it, so a mid-stream RST loses nothing. A frame that fails its CRC is
//! never delivered: the receiver counts the rejection, drops the
//! connection (the only safe resync once framing is suspect), and lets
//! the replay repair the stream. Because delivery is in-sequence-order
//! exactly once, every hardening path preserves bitwise determinism.
//!
//! Control frames (ACK/NAK/HELLO_ACK) travel *backwards* on the inbound
//! connection. The receiver writes them with a 1 ms write timeout and a
//! bounded pending buffer — it never blocks on the reverse path, so it
//! always keeps draining DATA and the classic full-duplex TCP deadlock
//! cannot arise.
//!
//! ## Fault injection
//!
//! A seeded [`NetChaosScript`] ([`TcpConfig::net_chaos`], from
//! `FT_NET_CHAOS` / `--net-chaos`) is consulted once per first
//! transmission of each sequenced frame: drop, delay, duplicate, reorder
//! (hold back behind the next frame), corrupt (bit flip after the CRC is
//! stamped), and mid-stream reset, plus time-windowed asymmetric
//! partitions that black-hole connects, heartbeats, and frames per
//! direction. Retransmissions are never re-injected (the
//! `injected_up_to` watermark), so every scripted fault is exercised
//! exactly once and recovery always converges.
//!
//! ## Failure detection: suspicion before verdict
//!
//! [`Transport::is_peer_dead`] reports a peer whose inbound connection hit
//! EOF/error and did not come back within [`TcpConfig::hb_grace_beats`]
//! heartbeats, or whose last frame (heartbeats included) is older than
//! `hb_miss_limit × hb_interval`. Between "slow" and "dead" sits a
//! *suspicion* level: after 2 beats of silence the heartbeat thread marks
//! the peer suspected, and any later frame rescinds the suspicion (counted
//! in the traffic ledger) — an injected sub-grace stall never escalates to
//! a spurious recovery. A peer that keeps sending unparseable frames
//! (oversize length, repeated CRC failures across [`STRIKE_LIMIT`]
//! consecutive connections) is marked *faulted* — a typed clean peer-fault
//! the detector handles like a death, instead of an abrupt recv-thread
//! teardown. Connection establishment retries with exponential backoff and
//! deterministic jitter until [`TcpConfig::conn_timeout`] is exhausted.

use crate::netchaos::{NetChaosScript, NetFault};
use crate::transport::{CommError, Msg, PeerCounters, Transport, TransportStats};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const KIND_HELLO: u8 = 0;
const KIND_HEARTBEAT: u8 = 1;
const KIND_DATA: u8 = 2;
/// Clean-shutdown announcement, sent from `Drop`. A SIGKILLed or aborted
/// process never runs `Drop`, so a GOODBYE reliably separates "finished
/// and left" from "died": a departed peer is not judged dead no matter how
/// long its sockets stay silent.
const KIND_GOODBYE: u8 = 3;
// Kinds 4..=8 belong to the serving layer's job frames (see [`jobs`]).
// They share the 48-byte header but travel on dedicated client↔daemon and
// daemon↔worker connections, never on the rank fabric; `reader_loop`
// ignores them like any other unknown kind if one ever strays there.
/// Session-resume reply to HELLO: the `seq` field carries the highest
/// sequence number the receiver has delivered from this sender.
const KIND_HELLO_ACK: u8 = 9;
/// Cumulative acknowledgement: every DATA frame up to and including `seq`
/// was delivered.
const KIND_ACK: u8 = 10;
/// Gap report: the receiver is still waiting for `seq` — rewind and
/// retransmit from there (go-back-N).
const KIND_NAK: u8 = 11;

const HEADER_LEN: usize = 48;
/// Sanity cap on a frame's payload (words): a corrupt length prefix must
/// not turn into a multi-gigabyte allocation. Exceeding it is a typed
/// frame rejection (an integrity strike), not an abrupt reader teardown.
const MAX_PAYLOAD_WORDS: u32 = 1 << 28;
/// Depth of each per-peer outbound queue.
const SEND_QUEUE_DEPTH: usize = 1024;
/// Granularity at which blocking socket reads re-check the shutdown flag.
const READ_POLL: Duration = Duration::from_millis(100);
/// Consecutive unparseable-frame connections after which a peer is marked
/// faulted (a clean typed peer-fault for the detector). Any valid DATA or
/// HEARTBEAT frame resets the count.
const STRIKE_LIMIT: u32 = 8;
/// Bound on the receiver's pending reverse-path control bytes. ACKs are
/// cumulative, so dropping one when the buffer is full is always safe.
const ACK_PUMP_CAP: usize = HEADER_LEN * 32;

/// Knobs for a [`TcpTransport`] endpoint.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// This endpoint's rank.
    pub rank: usize,
    /// Number of ranks in the fabric.
    pub world: usize,
    /// Heartbeat period.
    pub hb_interval: Duration,
    /// Beats of silence after which a peer is suspected dead.
    pub hb_miss_limit: u32,
    /// Beats of grace after an inbound EOF before the peer is declared
    /// dead: a reconnect (session resume) inside the grace window makes
    /// the EOF a non-event. Distinguishes slow/stalled from dead.
    pub hb_grace_beats: u32,
    /// Total budget for establishing one outbound connection (spent across
    /// exponentially backed-off, jittered attempts).
    pub conn_timeout: Duration,
    /// This process's incarnation (0 originally; respawns bump it).
    pub incarnation: u32,
    /// Seed for the backoff jitter (kept deterministic per rank).
    pub jitter_seed: u64,
    /// First reconnect backoff pause (doubles per failed attempt).
    pub backoff_init: Duration,
    /// Ceiling the exponential backoff saturates at.
    pub backoff_cap: Duration,
    /// Frames each per-peer sender may hold in flight awaiting ACK.
    pub net_window: usize,
    /// Seeded network-fault injection script (empty = faithful wire).
    pub net_chaos: NetChaosScript,
}

impl TcpConfig {
    /// Defaults tuned for localhost child processes: 100 ms beats, dead
    /// after 30 missed (3 s), 4 beats of post-EOF grace, 10 s connect
    /// budget, 10 ms → 400 ms backoff. Generous on purpose — CI boxes
    /// with a single core timeslice several ranks onto one CPU, and a
    /// starved heartbeat thread must not read as a death.
    pub fn new(rank: usize, world: usize) -> Self {
        TcpConfig {
            rank,
            world,
            hb_interval: Duration::from_millis(100),
            hb_miss_limit: 30,
            hb_grace_beats: 4,
            conn_timeout: Duration::from_secs(10),
            incarnation: 0,
            jitter_seed: 0x9e3779b97f4a7c15 ^ rank as u64,
            backoff_init: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(400),
            net_window: SEND_QUEUE_DEPTH,
            net_chaos: NetChaosScript::none(),
        }
    }

    /// Overlay the `FT_HB_*` / `FT_NET_*` environment knobs onto this
    /// config: `FT_HB_INTERVAL_MS`, `FT_HB_MISS_LIMIT`,
    /// `FT_HB_GRACE_BEATS`, `FT_HB_BACKOFF_INIT_MS`,
    /// `FT_HB_BACKOFF_CAP_MS`, `FT_NET_WINDOW`, `FT_NET_CHAOS`. Unset
    /// variables leave the field alone; a set-but-invalid value is a
    /// configuration error the caller must surface *before* any socket
    /// work starts.
    pub fn apply_env(&mut self) -> Result<(), String> {
        fn ms(name: &str) -> Result<Option<u64>, String> {
            match std::env::var(name) {
                Ok(v) => match v.parse::<u64>() {
                    Ok(n) if n > 0 => Ok(Some(n)),
                    _ => Err(format!("{name}: '{v}' is not a positive integer")),
                },
                Err(_) => Ok(None),
            }
        }
        if let Some(n) = ms("FT_HB_INTERVAL_MS")? {
            self.hb_interval = Duration::from_millis(n);
        }
        if let Some(n) = ms("FT_HB_MISS_LIMIT")? {
            self.hb_miss_limit = u32::try_from(n).map_err(|_| "FT_HB_MISS_LIMIT: too large".to_string())?;
        }
        if let Some(n) = ms("FT_HB_GRACE_BEATS")? {
            self.hb_grace_beats = u32::try_from(n).map_err(|_| "FT_HB_GRACE_BEATS: too large".to_string())?;
        }
        if let Some(n) = ms("FT_HB_BACKOFF_INIT_MS")? {
            self.backoff_init = Duration::from_millis(n);
        }
        if let Some(n) = ms("FT_HB_BACKOFF_CAP_MS")? {
            self.backoff_cap = Duration::from_millis(n);
        }
        if let Some(n) = ms("FT_NET_WINDOW")? {
            self.net_window = usize::try_from(n).map_err(|_| "FT_NET_WINDOW: too large".to_string())?;
        }
        if let Ok(v) = std::env::var("FT_NET_CHAOS") {
            self.net_chaos = NetChaosScript::parse(&v).map_err(|e| format!("FT_NET_CHAOS: {e}"))?;
        }
        self.validate()
    }

    /// Reject inconsistent liveness settings up front — a zero interval
    /// spins the beat thread, a zero miss limit declares everyone dead,
    /// an inverted backoff range would make the "exponential" pause
    /// shrink, and a zero grace or window wedges the resume protocol.
    pub fn validate(&self) -> Result<(), String> {
        if self.hb_interval.is_zero() {
            return Err("heartbeat interval must be positive".into());
        }
        if self.hb_miss_limit == 0 {
            return Err("heartbeat miss limit must be at least 1".into());
        }
        if self.hb_grace_beats == 0 {
            return Err("heartbeat grace must be at least 1 beat".into());
        }
        if self.conn_timeout.is_zero() {
            return Err("connect timeout must be positive".into());
        }
        if self.backoff_init.is_zero() || self.backoff_cap < self.backoff_init {
            return Err(format!(
                "reconnect backoff range {} ms → {} ms is invalid (need 0 < init <= cap)",
                self.backoff_init.as_millis(),
                self.backoff_cap.as_millis()
            ));
        }
        if self.net_window == 0 {
            return Err("retransmit window must hold at least 1 frame".into());
        }
        Ok(())
    }
}

// --- CRC32 (IEEE 802.3, the zlib/PNG polynomial) -----------------------------

const fn crc32_table() -> [u32; 256] {
    let mut t = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        t[i] = c;
        i += 1;
    }
    t
}

static CRC_TABLE: [u32; 256] = crc32_table();

fn crc32_update(mut c: u32, data: &[u8]) -> u32 {
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    c
}

fn crc32(data: &[u8]) -> u32 {
    !crc32_update(!0, data)
}

// --- counters / peer state ---------------------------------------------------

#[derive(Default)]
struct Counters {
    frames_tx: AtomicU64,
    bytes_tx: AtomicU64,
    frames_rx: AtomicU64,
    bytes_rx: AtomicU64,
    retries: AtomicU64,
    reconnects: AtomicU64,
    hb_misses: AtomicU64,
    retransmits: AtomicU64,
    dup_suppressed: AtomicU64,
    resumes: AtomicU64,
    crc_rejects: AtomicU64,
    frame_rejects: AtomicU64,
    rescinds: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> PeerCounters {
        PeerCounters {
            frames_tx: self.frames_tx.load(Ordering::Relaxed),
            bytes_tx: self.bytes_tx.load(Ordering::Relaxed),
            frames_rx: self.frames_rx.load(Ordering::Relaxed),
            bytes_rx: self.bytes_rx.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            hb_misses: self.hb_misses.load(Ordering::Relaxed),
            retransmits: self.retransmits.load(Ordering::Relaxed),
            dup_suppressed: self.dup_suppressed.load(Ordering::Relaxed),
            resumes: self.resumes.load(Ordering::Relaxed),
            crc_rejects: self.crc_rejects.load(Ordering::Relaxed),
            frame_rejects: self.frame_rejects.load(Ordering::Relaxed),
            rescinds: self.rescinds.load(Ordering::Relaxed),
        }
    }
}

struct PeerState {
    /// Milliseconds (since transport start) of the last frame from this
    /// peer; 0 = never heard from them.
    last_seen_ms: AtomicU64,
    /// The current inbound connection is live (HELLO seen, no EOF yet).
    inbound_alive: AtomicBool,
    /// Generation of the current inbound connection, so a stale reader's
    /// EOF cannot clobber the state of its replacement connection.
    conn_gen: AtomicU64,
    /// Highest incarnation seen from this rank.
    incarnation: AtomicU32,
    /// The peer announced a clean shutdown (GOODBYE frame): silence and
    /// EOF from it are departure, not death. Cleared when a later
    /// incarnation's HELLO re-opens the slot.
    departed: AtomicBool,
    /// Next DATA sequence number expected from this peer (delivery
    /// cursor); survives reconnects of the same incarnation so the
    /// HELLO_ACK resume handshake can announce `recv_next - 1`.
    recv_next: AtomicU64,
    /// Silent past 2 beats but not yet past the grace/miss thresholds:
    /// slow-or-dead is undecided. Any frame rescinds the suspicion.
    suspected: AtomicBool,
    /// The peer burned [`STRIKE_LIMIT`] consecutive connections on
    /// unparseable frames: typed peer-fault, treated like a death.
    faulted: AtomicBool,
    strikes: AtomicU32,
    counters: Counters,
}

struct Shared {
    rank: usize,
    incarnation: u32,
    start: Instant,
    hb_interval: Duration,
    hb_miss_limit: u32,
    grace_beats: u32,
    window_cap: usize,
    net_chaos: NetChaosScript,
    backoff_init: Duration,
    backoff_cap: Duration,
    shutdown: AtomicBool,
    peers: Vec<PeerState>,
    inbox_tx: Mutex<Sender<Msg>>,
}

impl Shared {
    fn now_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    fn touch(&self, peer: usize) {
        let st = &self.peers[peer];
        st.last_seen_ms.store(self.now_ms().max(1), Ordering::Relaxed);
        if st.suspected.swap(false, Ordering::AcqRel) {
            st.counters.rescinds.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn done(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }
}

fn strike(st: &PeerState) {
    if st.strikes.fetch_add(1, Ordering::AcqRel) + 1 >= STRIKE_LIMIT {
        st.faulted.store(true, Ordering::Release);
    }
}

enum Outbound {
    Frame(Msg),
    Heartbeat,
    Goodbye,
}

/// TCP endpoint: see the module docs for wire format and thread layout.
pub struct TcpTransport {
    shared: Arc<Shared>,
    addrs: Vec<SocketAddr>,
    conn_timeout: Duration,
    inbox_rx: Receiver<Msg>,
    senders: Vec<Option<SyncSender<Outbound>>>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl TcpTransport {
    /// Bind `127.0.0.1:(port_base + rank)` and connect the endpoint into a
    /// fabric whose rank `i` listens on `port_base + i`. The bind retries
    /// for up to `conn_timeout` so a respawned replacement can win its
    /// predecessor's port back from the kernel.
    pub fn connect(cfg: TcpConfig, port_base: u16) -> io::Result<TcpTransport> {
        let addrs: Vec<SocketAddr> = (0..cfg.world)
            .map(|r| SocketAddr::from(([127, 0, 0, 1], port_base + r as u16)))
            .collect();
        let deadline = Instant::now() + cfg.conn_timeout;
        let listener = loop {
            match TcpListener::bind(addrs[cfg.rank]) {
                Ok(l) => break l,
                Err(e) if Instant::now() < deadline => {
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(50));
                }
                Err(e) => return Err(e),
            }
        };
        Self::with_listener(cfg, addrs, listener)
    }

    /// Build a fully connected localhost fabric of `n` endpoints on
    /// ephemeral ports — the in-process test harness for the real wire.
    /// Liveness thresholds are made very generous (30 s) because the
    /// fabric's ranks are threads of one process sharing however few CPUs
    /// the test host has: nobody in these fabrics dies for real, so fast
    /// detection buys nothing and scheduler starvation must not look like
    /// a death. Death-detection tests build their own tight configs via
    /// [`TcpTransport::with_listener`] or [`TcpTransport::fabric_localhost_with`].
    pub fn fabric_localhost(n: usize) -> io::Result<Vec<TcpTransport>> {
        Self::fabric_localhost_with(n, |_| {})
    }

    /// [`TcpTransport::fabric_localhost`] with a per-rank config tweak
    /// applied after the generous test defaults — the hook the chaos
    /// batteries use to install a [`NetChaosScript`] or tight heartbeats.
    pub fn fabric_localhost_with(n: usize, tweak: impl Fn(&mut TcpConfig)) -> io::Result<Vec<TcpTransport>> {
        let listeners: Vec<TcpListener> = (0..n).map(|_| TcpListener::bind("127.0.0.1:0")).collect::<io::Result<_>>()?;
        let addrs: Vec<SocketAddr> = listeners.iter().map(|l| l.local_addr()).collect::<io::Result<_>>()?;
        listeners
            .into_iter()
            .enumerate()
            .map(|(rank, l)| {
                let mut cfg = TcpConfig::new(rank, n);
                cfg.hb_interval = Duration::from_millis(500);
                cfg.hb_miss_limit = 60;
                tweak(&mut cfg);
                Self::with_listener(cfg, addrs.clone(), l)
            })
            .collect()
    }

    /// Assemble an endpoint from an already-bound listener plus the full
    /// rank → address map.
    pub fn with_listener(cfg: TcpConfig, addrs: Vec<SocketAddr>, listener: TcpListener) -> io::Result<TcpTransport> {
        assert_eq!(addrs.len(), cfg.world, "one address per rank");
        assert!(cfg.rank < cfg.world, "rank outside the world");
        let (inbox_tx, inbox_rx) = channel();
        let shared = Arc::new(Shared {
            rank: cfg.rank,
            incarnation: cfg.incarnation,
            start: Instant::now(),
            hb_interval: cfg.hb_interval,
            hb_miss_limit: cfg.hb_miss_limit,
            grace_beats: cfg.hb_grace_beats,
            window_cap: cfg.net_window,
            net_chaos: cfg.net_chaos.clone(),
            backoff_init: cfg.backoff_init,
            backoff_cap: cfg.backoff_cap,
            shutdown: AtomicBool::new(false),
            peers: (0..cfg.world)
                .map(|_| PeerState {
                    last_seen_ms: AtomicU64::new(0),
                    inbound_alive: AtomicBool::new(false),
                    conn_gen: AtomicU64::new(0),
                    incarnation: AtomicU32::new(0),
                    departed: AtomicBool::new(false),
                    recv_next: AtomicU64::new(1),
                    suspected: AtomicBool::new(false),
                    faulted: AtomicBool::new(false),
                    strikes: AtomicU32::new(0),
                    counters: Counters::default(),
                })
                .collect(),
            inbox_tx: Mutex::new(inbox_tx),
        });
        let mut threads = Vec::new();

        listener.set_nonblocking(true)?;
        {
            let shared = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || accept_loop(shared, listener)));
        }

        let mut senders: Vec<Option<SyncSender<Outbound>>> = Vec::with_capacity(cfg.world);
        for (dst, &addr) in addrs.iter().enumerate() {
            if dst == cfg.rank {
                senders.push(None);
                continue;
            }
            let (tx, rx) = std::sync::mpsc::sync_channel(SEND_QUEUE_DEPTH);
            let shared = Arc::clone(&shared);
            let conn_timeout = cfg.conn_timeout;
            let jitter_seed = cfg.jitter_seed ^ (dst as u64).wrapping_mul(0xbf58476d1ce4e5b9);
            threads.push(std::thread::spawn(move || sender_loop(shared, dst, addr, conn_timeout, jitter_seed, rx)));
            senders.push(Some(tx));
        }

        {
            let shared = Arc::clone(&shared);
            let hb_senders: Vec<Option<SyncSender<Outbound>>> = senders.clone();
            threads.push(std::thread::spawn(move || heartbeat_loop(shared, hb_senders)));
        }

        Ok(TcpTransport {
            shared,
            addrs,
            conn_timeout: cfg.conn_timeout,
            inbox_rx,
            senders,
            threads: Mutex::new(threads),
        })
    }

    /// The rank → address map this endpoint was built with.
    pub fn addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// Total budget for establishing one outbound connection.
    pub fn conn_timeout(&self) -> Duration {
        self.conn_timeout
    }

    fn dead_after_ms(&self) -> u64 {
        (self.shared.hb_miss_limit as u64).max(1) * self.shared.hb_interval.as_millis().max(1) as u64
    }
}

impl Transport for TcpTransport {
    fn rank(&self) -> usize {
        self.shared.rank
    }

    fn world_size(&self) -> usize {
        self.shared.peers.len()
    }

    fn send(&self, dst: usize, msg: Msg) {
        if self.shared.done() {
            return;
        }
        if dst == self.shared.rank {
            // Self-delivery short-circuits the wire, like the mpsc fabric.
            let _ = self.shared.inbox_tx.lock().expect("inbox poisoned").send(msg);
            return;
        }
        if let Some(tx) = &self.senders[dst] {
            match tx.try_send(Outbound::Frame(msg)) {
                Ok(()) | Err(TrySendError::Disconnected(_)) => {}
                // Queue full: the peer is not draining (dead or wedged).
                // Fail-stop semantics — the frame vanishes.
                Err(TrySendError::Full(_)) => {}
            }
        }
    }

    fn recv(&self, timeout: Duration) -> Result<Msg, CommError> {
        if self.shared.done() {
            return Err(CommError::Closed);
        }
        match self.inbox_rx.recv_timeout(timeout) {
            Ok(m) => Ok(m),
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => Err(CommError::Timeout),
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => Err(CommError::Closed),
        }
    }

    fn close(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
    }

    fn is_peer_dead(&self, peer: usize) -> bool {
        if peer == self.shared.rank {
            return self.shared.done();
        }
        let st = &self.shared.peers[peer];
        if st.departed.load(Ordering::Acquire) {
            return false; // announced a clean shutdown: gone, not dead
        }
        if st.faulted.load(Ordering::Acquire) {
            return true; // persistent protocol violations: typed peer-fault
        }
        let last = st.last_seen_ms.load(Ordering::Relaxed);
        if last == 0 {
            return false; // never heard from them: absent, not dead
        }
        let silent = self.shared.now_ms().saturating_sub(last);
        let hb_ms = self.shared.hb_interval.as_millis().max(1) as u64;
        if !st.inbound_alive.load(Ordering::Acquire) && silent > self.shared.grace_beats as u64 * hb_ms {
            return true; // EOF observed (e.g. SIGKILL) and no resume within grace
        }
        silent > self.dead_after_ms()
    }

    fn incarnation(&self) -> u32 {
        self.shared.incarnation
    }

    fn peer_incarnation(&self, peer: usize) -> u32 {
        if peer == self.shared.rank {
            self.shared.incarnation
        } else {
            self.shared.peers[peer].incarnation.load(Ordering::Acquire)
        }
    }

    fn stats(&self) -> TransportStats {
        TransportStats {
            peers: self.shared.peers.iter().map(|p| p.counters.snapshot()).collect(),
        }
    }
}

impl TcpTransport {
    fn teardown(&mut self, goodbye: bool) {
        // Announce the clean shutdown before anything closes: sender
        // threads drain their queues to already-established streams even
        // during teardown, so peers learn this exit was deliberate and
        // never mistake the ensuing EOF + silence for a death.
        if goodbye {
            for s in self.senders.iter().flatten() {
                let _ = s.try_send(Outbound::Goodbye);
            }
        }
        self.shared.shutdown.store(true, Ordering::Release);
        // Disconnect the outbound queues so sender threads wake from recv.
        for s in self.senders.iter_mut() {
            *s = None;
        }
        let threads = std::mem::take(&mut *self.threads.lock().expect("threads poisoned"));
        for t in threads {
            let _ = t.join();
        }
    }

    /// Tear down without the GOODBYE announcement — the unit-test stand-in
    /// for a process death (a real SIGKILL never runs `Drop` at all).
    #[cfg(test)]
    fn drop_abruptly(mut self) {
        self.teardown(false);
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.teardown(true);
    }
}

// --- framing ----------------------------------------------------------------

fn encode_frame(kind: u8, src: usize, incarnation: u32, wire: u64, epoch: u64, seq: u64, payload: &[f64]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(HEADER_LEN + 8 * payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.push(kind);
    buf.extend_from_slice(&[0u8; 3]);
    buf.extend_from_slice(&(src as u32).to_le_bytes());
    buf.extend_from_slice(&incarnation.to_le_bytes());
    buf.extend_from_slice(&wire.to_le_bytes());
    buf.extend_from_slice(&epoch.to_le_bytes());
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.extend_from_slice(&[0u8; 8]); // frame CRC + header CRC (stamped below)
                                      // Header CRC first (over bytes 0..40): the receiver verifies it
                                      // *before* trusting the length prefix, so a flipped length bit is an
                                      // immediate typed rejection instead of a desynchronized stream stuck
                                      // mid-read on a phantom payload.
    let hcrc = crc32(&buf[..40]);
    buf[44..48].copy_from_slice(&hcrc.to_le_bytes());
    for v in payload {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    // Frame CRC over everything (header-CRC bytes included, its own field
    // zeroed) — payload integrity on top of the header's self-check.
    let crc = crc32(&buf);
    buf[40..44].copy_from_slice(&crc.to_le_bytes());
    buf
}

struct Frame {
    kind: u8,
    src: usize,
    incarnation: u32,
    wire: u64,
    epoch: u64,
    seq: u64,
    payload: Arc<[f64]>,
}

/// Why a frame failed to arrive: an I/O condition (EOF, reset), a CRC
/// mismatch (injected or real corruption), or an oversize length prefix.
/// The two integrity variants are *typed rejections* — the reader counts
/// them and strikes the peer instead of silently tearing down.
enum FrameErr {
    Io,
    Crc,
    Oversize,
}

impl From<io::Error> for FrameErr {
    fn from(_: io::Error) -> FrameErr {
        FrameErr::Io
    }
}

/// `read_exact` that survives the read-timeout polls used for shutdown
/// checks: a timeout mid-frame keeps filling the same buffer, so the
/// stream never desynchronizes. Returns `Ok(false)` on a clean shutdown
/// observed before any byte of the buffer arrived.
fn read_full(shared: &Shared, stream: &mut TcpStream, buf: &mut [u8]) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "peer closed")),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
                if shared.done() && filled == 0 {
                    return Ok(false);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

fn read_frame(shared: &Shared, stream: &mut TcpStream) -> Result<Option<Frame>, FrameErr> {
    let mut header = [0u8; HEADER_LEN];
    if !read_full(shared, stream, &mut header)? {
        return Ok(None);
    }
    // The header carries its own CRC (bytes 44..48, over bytes 0..40):
    // check it before believing the length prefix, or a single flipped
    // length bit would wedge this reader mid-frame on a phantom payload.
    let hcrc = u32::from_le_bytes(header[44..48].try_into().unwrap());
    if crc32(&header[..40]) != hcrc {
        return Err(FrameErr::Crc);
    }
    let words = u32::from_le_bytes(header[0..4].try_into().unwrap());
    if words > MAX_PAYLOAD_WORDS {
        return Err(FrameErr::Oversize);
    }
    let kind = header[4];
    let src = u32::from_le_bytes(header[8..12].try_into().unwrap()) as usize;
    let incarnation = u32::from_le_bytes(header[12..16].try_into().unwrap());
    let wire = u64::from_le_bytes(header[16..24].try_into().unwrap());
    let epoch = u64::from_le_bytes(header[24..32].try_into().unwrap());
    let seq = u64::from_le_bytes(header[32..40].try_into().unwrap());
    let crc = u32::from_le_bytes(header[40..44].try_into().unwrap());
    let mut raw = vec![0u8; 8 * words as usize];
    if !read_full(shared, stream, &mut raw)? {
        return Ok(None);
    }
    let mut zeroed = header;
    zeroed[40..44].copy_from_slice(&[0u8; 4]);
    if !crc32_update(crc32_update(!0, &zeroed), &raw) != crc {
        return Err(FrameErr::Crc);
    }
    let payload: Arc<[f64]> = raw
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect::<Vec<f64>>()
        .into();
    Ok(Some(Frame { kind, src, incarnation, wire, epoch, seq, payload }))
}

/// Validate a 48-byte payloadless control frame (HELLO_ACK / ACK / NAK)
/// and return its `(kind, seq)`. `None` = corrupt or not a control frame.
fn parse_control(header: &[u8; HEADER_LEN]) -> Option<(u8, u64)> {
    let words = u32::from_le_bytes(header[0..4].try_into().unwrap());
    if words != 0 {
        return None;
    }
    let crc = u32::from_le_bytes(header[40..44].try_into().unwrap());
    let mut zeroed = *header;
    zeroed[40..44].copy_from_slice(&[0u8; 4]);
    if crc32(&zeroed) != crc {
        return None;
    }
    Some((header[4], u64::from_le_bytes(header[32..40].try_into().unwrap())))
}

/// `read_exact` against a wall-clock deadline over a stream whose read
/// timeout is short: used for the HELLO_ACK leg of the resume handshake.
fn read_exact_deadline(stream: &mut TcpStream, buf: &mut [u8], deadline: Instant) -> bool {
    let mut filled = 0;
    while filled < buf.len() {
        if Instant::now() >= deadline {
            return false;
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return false,
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
    true
}

// --- job frames (serving layer) ---------------------------------------------

/// Job-stream framing for the persistent solver service.
///
/// The serving layer (`crates/serve`) reuses the transport's 48-byte frame
/// header verbatim — CRC32 included — with the fields re-purposed for job
/// routing:
///
/// ```text
/// header field        job-frame meaning
/// kind                SUBMIT / ACCEPT / RESULT / REJECT / CKPT
/// source rank         tenant id
/// source incarnation  unused (0)
/// wire key            job id (SUBMIT: client-chosen idempotency id)
/// sender epoch        request sequence number (echoed in replies)
/// sequence            unused (0)
/// payload             f64 words, grammar per kind (see crates/serve)
/// ```
///
/// Job frames travel on their own client↔daemon and daemon↔worker
/// connections — never on the rank fabric — so they need a plain blocking
/// reader rather than the fabric's shutdown-polling [`read_full`].
pub mod jobs {
    use super::{crc32, crc32_update, encode_frame, HEADER_LEN, MAX_PAYLOAD_WORDS};
    use std::io::{self, Read, Write};
    use std::net::TcpStream;

    /// Submit a job (client → daemon) or assign one (daemon → worker).
    pub const KIND_SUBMIT: u8 = 4;
    /// Admission acknowledgement carrying the allocated job id; also the
    /// worker → daemon registration frame (job field = pool slot).
    pub const KIND_ACCEPT: u8 = 5;
    /// Completed-job payload (worker → daemon → client).
    pub const KIND_RESULT: u8 = 6;
    /// Typed rejection: backpressure, quota, malformed spec, or a job that
    /// failed beyond the code distance. Payload starts with a reason code.
    pub const KIND_REJECT: u8 = 7;
    /// Checkpoint upload (worker → daemon): one rank's serialized
    /// `FtCheckpoint` image at a scope boundary.
    pub const KIND_CKPT: u8 = 8;

    /// One frame of the job stream.
    #[derive(Debug, Clone, PartialEq)]
    pub struct JobFrame {
        /// One of the `KIND_*` constants above.
        pub kind: u8,
        /// Tenant id (rides the header's source-rank field).
        pub tenant: u32,
        /// Job id (rides the header's wire-key field).
        pub job: u64,
        /// Request sequence number (rides the header's epoch field);
        /// replies echo the sequence of the request they answer.
        pub seq: u64,
        /// Frame body, grammar per kind.
        pub payload: Vec<f64>,
    }

    /// Serialize and send one job frame.
    pub fn write_job_frame(stream: &mut TcpStream, frame: &JobFrame) -> io::Result<()> {
        debug_assert!((KIND_SUBMIT..=KIND_CKPT).contains(&frame.kind), "frame kind {} is not a job kind", frame.kind);
        let buf = encode_frame(frame.kind, frame.tenant as usize, 0, frame.job, frame.seq, 0, &frame.payload);
        stream.write_all(&buf)?;
        stream.flush()
    }

    /// Blocking read of one job frame. Errors on EOF, a malformed header,
    /// a CRC mismatch, or a kind outside the job range (a fabric frame
    /// straying onto a job connection is a protocol violation, not data).
    pub fn read_job_frame(stream: &mut TcpStream) -> io::Result<JobFrame> {
        let mut header = [0u8; HEADER_LEN];
        stream.read_exact(&mut header)?;
        let hcrc = u32::from_le_bytes(header[44..48].try_into().unwrap());
        if crc32(&header[..40]) != hcrc {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "job frame header failed its CRC"));
        }
        let words = u32::from_le_bytes(header[0..4].try_into().unwrap());
        if words > MAX_PAYLOAD_WORDS {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "job frame length out of range"));
        }
        let kind = header[4];
        if !(KIND_SUBMIT..=KIND_CKPT).contains(&kind) {
            return Err(io::Error::new(io::ErrorKind::InvalidData, format!("frame kind {kind} is not a job frame")));
        }
        let tenant = u32::from_le_bytes(header[8..12].try_into().unwrap());
        let job = u64::from_le_bytes(header[16..24].try_into().unwrap());
        let seq = u64::from_le_bytes(header[24..32].try_into().unwrap());
        let crc = u32::from_le_bytes(header[40..44].try_into().unwrap());
        let mut raw = vec![0u8; 8 * words as usize];
        stream.read_exact(&mut raw)?;
        let mut zeroed = header;
        zeroed[40..44].copy_from_slice(&[0u8; 4]);
        if !crc32_update(crc32_update(!0, &zeroed), &raw) != crc {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "job frame failed its CRC"));
        }
        let payload = raw
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect::<Vec<f64>>();
        Ok(JobFrame { kind, tenant, job, seq, payload })
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::net::TcpListener;

        #[test]
        fn job_frames_round_trip_over_a_socket() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let sent = JobFrame {
                kind: KIND_SUBMIT,
                tenant: 42,
                job: 7,
                seq: 3,
                payload: vec![1.0, -2.5, std::f64::consts::PI],
            };
            let tx = sent.clone();
            let writer = std::thread::spawn(move || {
                let mut s = TcpStream::connect(addr).unwrap();
                write_job_frame(&mut s, &tx).unwrap();
                // Empty payloads are legal (pure control frames).
                write_job_frame(
                    &mut s,
                    &JobFrame {
                        kind: KIND_ACCEPT,
                        tenant: 0,
                        job: 9,
                        seq: 4,
                        payload: vec![],
                    },
                )
                .unwrap();
            });
            let (mut s, _) = listener.accept().unwrap();
            let got = read_job_frame(&mut s).unwrap();
            assert_eq!(got, sent);
            let ctl = read_job_frame(&mut s).unwrap();
            assert_eq!((ctl.kind, ctl.job, ctl.seq, ctl.payload.len()), (KIND_ACCEPT, 9, 4, 0));
            writer.join().unwrap();
        }

        #[test]
        fn fabric_kinds_are_rejected_on_job_connections() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let writer = std::thread::spawn(move || {
                let mut s = TcpStream::connect(addr).unwrap();
                // A DATA frame (kind 2) must not parse as a job frame.
                let buf = crate::tcp::encode_frame(super::super::KIND_DATA, 1, 0, 5, 0, 0, &[1.0]);
                use std::io::Write;
                s.write_all(&buf).unwrap();
            });
            let (mut s, _) = listener.accept().unwrap();
            let err = read_job_frame(&mut s).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData);
            writer.join().unwrap();
        }

        #[test]
        fn corrupted_job_frames_fail_their_crc() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let writer = std::thread::spawn(move || {
                let mut s = TcpStream::connect(addr).unwrap();
                let mut buf = encode_frame(KIND_RESULT, 1, 0, 5, 2, 0, &[1.0, 2.0]);
                let last = buf.len() - 1;
                buf[last] ^= 0x10; // flip one payload bit after the CRC stamp
                use std::io::Write;
                s.write_all(&buf).unwrap();
            });
            let (mut s, _) = listener.accept().unwrap();
            let err = read_job_frame(&mut s).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData);
            writer.join().unwrap();
        }
    }
}

// --- threads ----------------------------------------------------------------

fn accept_loop(shared: Arc<Shared>, listener: TcpListener) {
    while !shared.done() {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(&shared);
                // Handshake + reads happen off the accept thread so one
                // slow peer cannot block admission of the others.
                std::thread::spawn(move || reader_loop(shared, stream));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Queue a 48-byte control frame on the receiver's reverse path. Bounded:
/// when the pending buffer is full the frame is skipped — ACKs are
/// cumulative and NAK loss is covered by the sender's stale-window timer.
fn push_ctl(shared: &Shared, st: &PeerState, pending: &mut Vec<u8>, kind: u8, seq: u64) {
    if pending.len() + HEADER_LEN > ACK_PUMP_CAP {
        return;
    }
    pending.extend_from_slice(&encode_frame(kind, shared.rank, shared.incarnation, 0, 0, seq, &[]));
    st.counters.frames_tx.fetch_add(1, Ordering::Relaxed);
    st.counters.bytes_tx.fetch_add(HEADER_LEN as u64, Ordering::Relaxed);
}

/// Flush as much of the pending reverse-path buffer as the socket will
/// take without blocking (the stream has a 1 ms write timeout). Partial
/// writes are preserved. `false` = the connection is broken.
fn pump_acks(stream: &mut TcpStream, pending: &mut Vec<u8>) -> bool {
    while !pending.is_empty() {
        match stream.write(pending) {
            Ok(0) => return false,
            Ok(n) => {
                pending.drain(..n);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => return true,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
    true
}

fn reader_loop(shared: Arc<Shared>, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_POLL));
    // The connection opens with the peer's HELLO.
    let hello = match read_frame(&shared, &mut stream) {
        Ok(Some(f)) if f.kind == KIND_HELLO && f.src < shared.peers.len() => f,
        _ => return,
    };
    let src = hello.src;
    let st = &shared.peers[src];
    // A stale incarnation must not resurrect a rank its replacement owns.
    if hello.incarnation < st.incarnation.load(Ordering::Acquire) {
        return;
    }
    if hello.incarnation > st.incarnation.load(Ordering::Acquire) {
        // A fresh incarnation re-opens a slot its predecessor vacated,
        // with a clean slate: sequence space, strikes, and suspicion all
        // belonged to the dead process, not its replacement.
        st.departed.store(false, Ordering::Release);
        st.faulted.store(false, Ordering::Release);
        st.strikes.store(0, Ordering::Release);
        st.suspected.store(false, Ordering::Release);
        st.recv_next.store(1, Ordering::Release);
    }
    st.incarnation.store(hello.incarnation, Ordering::Release);
    let my_gen = st.conn_gen.fetch_add(1, Ordering::AcqRel) + 1;
    st.inbound_alive.store(true, Ordering::Release);
    shared.touch(src);
    st.counters.frames_rx.fetch_add(1, Ordering::Relaxed);
    st.counters.bytes_rx.fetch_add(HEADER_LEN as u64, Ordering::Relaxed);

    // Session resume: announce the highest sequence delivered so far so
    // the sender can prune its window and replay only what was lost. The
    // write is blocking (the socket is fresh, the frame is 48 bytes).
    let delivered = st.recv_next.load(Ordering::Acquire).saturating_sub(1);
    let hello_ack = encode_frame(KIND_HELLO_ACK, shared.rank, shared.incarnation, 0, 0, delivered, &[]);
    if stream.write_all(&hello_ack).is_err() {
        if st.conn_gen.load(Ordering::Acquire) == my_gen {
            st.inbound_alive.store(false, Ordering::Release);
        }
        return;
    }
    st.counters.frames_tx.fetch_add(1, Ordering::Relaxed);
    st.counters.bytes_tx.fetch_add(HEADER_LEN as u64, Ordering::Relaxed);
    // From here the reverse path must never block the forward one.
    let _ = stream.set_write_timeout(Some(Duration::from_millis(1)));
    let mut pending: Vec<u8> = Vec::new();
    let mut last_nak: Option<(u64, Instant)> = None;

    while !shared.done() {
        match read_frame(&shared, &mut stream) {
            Ok(Some(f)) => {
                shared.touch(src);
                st.counters.frames_rx.fetch_add(1, Ordering::Relaxed);
                st.counters
                    .bytes_rx
                    .fetch_add((HEADER_LEN + 8 * f.payload.len()) as u64, Ordering::Relaxed);
                st.strikes.store(0, Ordering::Release);
                if f.incarnation > st.incarnation.load(Ordering::Acquire) {
                    st.incarnation.store(f.incarnation, Ordering::Release);
                }
                match f.kind {
                    KIND_DATA => {
                        let expected = st.recv_next.load(Ordering::Acquire);
                        if f.seq == 0 {
                            // Unsequenced data (defensive): deliver as-is.
                            let msg = Msg { src, wire: f.wire, epoch: f.epoch, payload: f.payload };
                            if shared.inbox_tx.lock().expect("inbox poisoned").send(msg).is_err() {
                                break;
                            }
                        } else if f.seq < expected {
                            // Replay overlap or injected duplicate.
                            st.counters.dup_suppressed.fetch_add(1, Ordering::Relaxed);
                            push_ctl(&shared, st, &mut pending, KIND_ACK, expected - 1);
                        } else if f.seq > expected {
                            // Gap: ask for a rewind, rate-limited so a
                            // burst of in-flight frames yields one NAK.
                            let renak = match last_nak {
                                Some((s, t)) => s != expected || t.elapsed() > Duration::from_millis(50),
                                None => true,
                            };
                            if renak {
                                push_ctl(&shared, st, &mut pending, KIND_NAK, expected);
                                last_nak = Some((expected, Instant::now()));
                            }
                        } else {
                            let msg = Msg { src, wire: f.wire, epoch: f.epoch, payload: f.payload };
                            if shared.inbox_tx.lock().expect("inbox poisoned").send(msg).is_err() {
                                break;
                            }
                            st.recv_next.store(expected + 1, Ordering::Release);
                            push_ctl(&shared, st, &mut pending, KIND_ACK, expected);
                        }
                    }
                    KIND_GOODBYE => st.departed.store(true, Ordering::Release),
                    _ => {}
                }
                if !pump_acks(&mut stream, &mut pending) {
                    break;
                }
            }
            Ok(None) => break, // shutdown
            Err(FrameErr::Crc) => {
                // Typed corruption rejection: count it, strike the peer,
                // and drop the connection — once framing is suspect the
                // only safe resync is a fresh stream, whose session
                // resume replays everything lost.
                st.counters.crc_rejects.fetch_add(1, Ordering::Relaxed);
                strike(st);
                break;
            }
            Err(FrameErr::Oversize) => {
                // Typed frame rejection (satellite: no abrupt teardown) —
                // repeated offenses escalate to a clean peer-fault.
                st.counters.frame_rejects.fetch_add(1, Ordering::Relaxed);
                strike(st);
                break;
            }
            Err(FrameErr::Io) => break, // EOF or hard error: peer gone
        }
    }
    // Only the *current* connection's reader may declare the peer down.
    if st.conn_gen.load(Ordering::Acquire) == my_gen {
        st.inbound_alive.store(false, Ordering::Release);
    }
}

/// Deterministic xorshift jitter in `[0.5, 1.5)` of `base`.
fn jittered(base: Duration, state: &mut u64) -> Duration {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    let frac = (*state >> 11) as f64 / (1u64 << 53) as f64;
    base.mul_f64(0.5 + frac)
}

fn establish(
    shared: &Shared,
    dst: usize,
    addr: SocketAddr,
    conn_timeout: Duration,
    jitter: &mut u64,
    ever_connected: bool,
) -> Option<TcpStream> {
    let deadline = Instant::now() + conn_timeout;
    let mut backoff = shared.backoff_init;
    let mut attempt = 0u64;
    loop {
        // During teardown the budget shrinks to two quick attempts: a frame
        // queued before close still deserves its flush even to a peer this
        // sender never connected to (its ARRIVE/GOODBYE may be the one
        // frame that lets a waiter finish), but a gone peer — localhost
        // refuses instantly — must not wedge the joining dropper.
        if shared.done() && attempt >= 2 {
            return None;
        }
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return None;
        }
        attempt += 1;
        if attempt > 1 {
            shared.peers[dst].counters.retries.fetch_add(1, Ordering::Relaxed);
        }
        let per_attempt = remaining.min(Duration::from_millis(250));
        if let Ok(mut stream) = TcpStream::connect_timeout(&addr, per_attempt) {
            let _ = stream.set_nodelay(true);
            let hello = encode_frame(KIND_HELLO, shared.rank, shared.incarnation, 0, 0, 0, &[]);
            if stream.write_all(&hello).is_ok() {
                let c = &shared.peers[dst].counters;
                c.frames_tx.fetch_add(1, Ordering::Relaxed);
                c.bytes_tx.fetch_add(hello.len() as u64, Ordering::Relaxed);
                if ever_connected {
                    c.reconnects.fetch_add(1, Ordering::Relaxed);
                }
                return Some(stream);
            }
        }
        let pause = jittered(backoff, jitter).min(deadline.saturating_duration_since(Instant::now()));
        std::thread::sleep(pause);
        backoff = (backoff * 2).min(shared.backoff_cap);
    }
}

/// One frame of the sender's in-flight window: the decoded message parts
/// are kept (not the encoded bytes) so replays can re-stamp a renumbered
/// sequence after a session resume against a fresh receiver.
struct WinEntry {
    seq: u64,
    sent_at: Instant,
    wire: u64,
    epoch: u64,
    payload: Arc<[f64]>,
}

/// Per-`(src → dst)` sender state: the stream, the go-back-N window, the
/// reverse-path parse buffer, and the injection watermark.
struct Link {
    dst: usize,
    addr: SocketAddr,
    conn_timeout: Duration,
    jitter: u64,
    stream: Option<TcpStream>,
    ever_connected: bool,
    /// Next sequence number to assign (starts at 1; 0 = unsequenced).
    next_seq: u64,
    /// Highest sequence that already had its injection draw: faults fire
    /// on first transmission only, never on retransmits.
    injected_up_to: u64,
    window: VecDeque<WinEntry>,
    /// Unparsed bytes read back from the receiver (ACK/NAK stream).
    ackbuf: Vec<u8>,
    /// Sequences held back by an injected reorder, flushed after the next
    /// first transmission so they hit the wire out of order.
    held_back: Vec<u64>,
    /// Consecutive stale-head rewinds with no ACK progress. In-place
    /// retransmission cannot resynchronize a receiver stuck mid-frame
    /// (e.g. a corrupted length field), so after a few fruitless rounds
    /// the link escalates to a fresh connection and session resume.
    stale_rounds: u32,
}

impl Link {
    fn drop_stream(&mut self) {
        self.stream = None;
        self.ackbuf.clear();
    }

    /// Establish (or re-establish) the connection and run the session
    /// resume: read the receiver's HELLO_ACK, prune the window up to the
    /// acknowledged sequence, renumber if the receiver's state is behind
    /// the window (a respawned receiver lost it), and replay the rest.
    fn connect_and_resume(&mut self, shared: &Shared) {
        if shared.net_chaos.blackholed(shared.rank, self.dst, shared.now_ms()) {
            return; // partitioned: connects black-hole too
        }
        let was_connected = self.ever_connected;
        let Some(mut stream) = establish(shared, self.dst, self.addr, self.conn_timeout, &mut self.jitter, was_connected) else {
            return;
        };
        self.ever_connected = true;
        self.ackbuf.clear();
        self.held_back.clear();
        let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
        let mut hdr = [0u8; HEADER_LEN];
        if !read_exact_deadline(&mut stream, &mut hdr, Instant::now() + Duration::from_secs(2)) {
            return;
        }
        let delivered = match parse_control(&hdr) {
            Some((k, seq)) if k == KIND_HELLO_ACK => seq,
            _ => return,
        };
        while self.window.front().is_some_and(|e| e.seq <= delivered) {
            self.window.pop_front();
        }
        if self.window.is_empty() {
            // Everything in flight is delivered (or there was nothing):
            // continue exactly after the receiver's cursor. Handles a
            // respawned receiver (delivered = 0) without wedging.
            self.next_seq = delivered + 1;
        } else if self.window.front().expect("nonempty").seq > delivered + 1 {
            // The receiver lost state beyond our window (fresh
            // incarnation): renumber the survivors consecutively so the
            // stream stays gap-free.
            let mut s = delivered + 1;
            for e in self.window.iter_mut() {
                e.seq = s;
                s += 1;
            }
            self.next_seq = s;
        }
        let _ = stream.set_read_timeout(Some(Duration::from_millis(1)));
        self.stream = Some(stream);
        let c = &shared.peers[self.dst].counters;
        if was_connected {
            c.resumes.fetch_add(1, Ordering::Relaxed);
        }
        // Replay the surviving window in order. On a first connect this
        // IS the first transmission (frames admitted before the peer was
        // reachable), so only true resumes count as retransmits.
        let seqs: Vec<u64> = self.window.iter().map(|e| e.seq).collect();
        for s in seqs {
            if was_connected {
                c.retransmits.fetch_add(1, Ordering::Relaxed);
            }
            if !self.write_entry(shared, s, None, false) {
                return;
            }
        }
    }

    /// Encode and write the window entry holding `seq`. `corrupt` flips
    /// one bit of a copy *after* the CRC stamp (the window keeps the
    /// clean frame); `dup` writes the clean frame twice. `true` = the
    /// stream survived (or the entry was already pruned).
    fn write_entry(&mut self, shared: &Shared, seq: u64, corrupt: Option<u64>, dup: bool) -> bool {
        let Some(e) = self.window.iter_mut().find(|e| e.seq == seq) else {
            return true; // ACKed while held back or rewinding: nothing to do
        };
        e.sent_at = Instant::now();
        let buf = encode_frame(KIND_DATA, shared.rank, shared.incarnation, e.wire, e.epoch, seq, &e.payload);
        let Some(s) = &mut self.stream else { return false };
        let wrote = if let Some(bit) = corrupt {
            let mut bad = buf.clone();
            let i = (bit % (bad.len() as u64 * 8)) as usize;
            bad[i / 8] ^= 1 << (i % 8);
            s.write_all(&bad)
        } else {
            s.write_all(&buf)
        };
        let c = &shared.peers[self.dst].counters;
        match wrote {
            Ok(()) => {
                c.frames_tx.fetch_add(1, Ordering::Relaxed);
                c.bytes_tx.fetch_add(buf.len() as u64, Ordering::Relaxed);
                if dup && self.stream.as_mut().expect("stream live").write_all(&buf).is_ok() {
                    c.frames_tx.fetch_add(1, Ordering::Relaxed);
                    c.bytes_tx.fetch_add(buf.len() as u64, Ordering::Relaxed);
                }
                true
            }
            Err(_) => {
                self.drop_stream();
                false
            }
        }
    }

    /// First transmission of a freshly admitted sequence: run the
    /// injection draw (exactly once per sequence), then write.
    fn transmit_seq(&mut self, shared: &Shared, seq: u64) {
        if shared.net_chaos.blackholed(shared.rank, self.dst, shared.now_ms()) {
            return; // stays in the window; heals when the partition does
        }
        if self.stream.is_none() {
            // The resume replay covers this entry (without injection —
            // a frame first sent through a reconnect is a retransmission
            // for injection purposes).
            self.injected_up_to = self.injected_up_to.max(seq);
            self.connect_and_resume(shared);
            return;
        }
        let mut corrupt = None;
        let mut dup = false;
        if seq > self.injected_up_to {
            self.injected_up_to = seq;
            match shared.net_chaos.decide(shared.rank, self.dst, seq) {
                None => {}
                Some(NetFault::Drop) => return, // the window will heal it
                Some(NetFault::Delay(ms)) => std::thread::sleep(Duration::from_millis(ms.min(10_000))),
                Some(NetFault::Dup) => dup = true,
                Some(NetFault::Corrupt) => corrupt = Some(shared.net_chaos.corrupt_bit(shared.rank, self.dst, seq)),
                Some(NetFault::Reset) => {
                    self.drop_stream(); // mid-stream RST; resume replays
                    return;
                }
                Some(NetFault::Reorder) => {
                    self.held_back.push(seq);
                    return; // hits the wire after the next frame
                }
            }
        }
        if self.write_entry(shared, seq, corrupt, dup) {
            self.flush_held(shared, seq);
        }
    }

    /// Write any reorder-held frames now that a later one has gone out.
    fn flush_held(&mut self, shared: &Shared, just_sent: u64) {
        if self.held_back.is_empty() {
            return;
        }
        let held = std::mem::take(&mut self.held_back);
        for h in held {
            if h != just_sent && !self.write_entry(shared, h, None, false) {
                return;
            }
        }
    }

    /// Drain the reverse path: prune the window on cumulative ACKs and
    /// rewind on the lowest NAK. Garbage on the control channel drops the
    /// stream (resync by resume).
    fn drain_control(&mut self, shared: &Shared) {
        {
            let Some(s) = &mut self.stream else { return };
            let mut buf = [0u8; HEADER_LEN * 32];
            loop {
                match s.read(&mut buf) {
                    Ok(0) => {
                        self.drop_stream();
                        return;
                    }
                    Ok(n) => {
                        self.ackbuf.extend_from_slice(&buf[..n]);
                        if n < buf.len() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        self.drop_stream();
                        return;
                    }
                }
            }
        }
        let mut consumed = 0;
        let mut min_nak: Option<u64> = None;
        let mut garbage = false;
        while self.ackbuf.len() - consumed >= HEADER_LEN {
            let chunk: &[u8; HEADER_LEN] = self.ackbuf[consumed..consumed + HEADER_LEN].try_into().expect("sized");
            match parse_control(chunk) {
                Some((k, seq)) if k == KIND_ACK => {
                    while self.window.front().is_some_and(|e| e.seq <= seq) {
                        self.window.pop_front();
                        self.stale_rounds = 0;
                    }
                }
                Some((k, seq)) if k == KIND_NAK => {
                    min_nak = Some(min_nak.map_or(seq, |m: u64| m.min(seq)));
                }
                _ => {
                    garbage = true;
                    break;
                }
            }
            consumed += HEADER_LEN;
        }
        self.ackbuf.drain(..consumed);
        if garbage {
            self.drop_stream();
            return;
        }
        if let Some(from) = min_nak {
            self.go_back_n(shared, from);
        }
    }

    /// Retransmit every windowed frame at or after `from` (clamped into
    /// the window — a NAK below it is stale and must not panic a rewind).
    fn go_back_n(&mut self, shared: &Shared, from: u64) {
        let from = self.window.front().map_or(from, |e| e.seq.max(from));
        self.held_back.clear();
        let seqs: Vec<u64> = self.window.iter().filter(|e| e.seq >= from).map(|e| e.seq).collect();
        for s in seqs {
            shared.peers[self.dst].counters.retransmits.fetch_add(1, Ordering::Relaxed);
            if !self.write_entry(shared, s, None, false) {
                return;
            }
        }
    }

    /// Idle-tick maintenance: reconnect if the window is stranded without
    /// a stream, rewind if its head has gone stale (a lost NAK or a
    /// dropped frame with no later traffic to expose the gap), and let
    /// the window go when the peer announced a clean departure.
    fn service(&mut self, shared: &Shared) {
        if shared.peers[self.dst].departed.load(Ordering::Acquire) {
            self.window.clear();
            self.held_back.clear();
            return;
        }
        if self.window.is_empty() {
            return;
        }
        if self.stream.is_none() {
            self.connect_and_resume(shared);
            return;
        }
        let stale = (shared.hb_interval * 2).max(Duration::from_millis(200));
        let head = self.window.front().expect("nonempty");
        if head.sent_at.elapsed() > stale {
            self.stale_rounds += 1;
            if self.stale_rounds > 2 {
                // Repeated in-place rewinds bought no ACK progress: the
                // stream is desynchronized (the receiver may be blocked
                // mid-frame on a mangled length). Force a fresh session;
                // the resume handshake replays the window on a clean
                // stream the receiver can parse from byte zero.
                self.stale_rounds = 0;
                self.drop_stream();
                self.connect_and_resume(shared);
            } else {
                let from = head.seq;
                self.go_back_n(shared, from);
            }
        }
    }

    /// Admit a message into the window (blocking briefly on a full window
    /// for ACKs to free space) and run its first transmission. A window
    /// still full after the wait drops the message *before* a sequence is
    /// assigned — fail-stop, and the sequence space stays contiguous.
    fn admit(&mut self, shared: &Shared, m: Msg) {
        if self.window.len() >= shared.window_cap {
            let deadline = Instant::now() + (shared.hb_interval * 2).max(Duration::from_millis(100));
            while self.window.len() >= shared.window_cap && Instant::now() < deadline && !shared.done() {
                if self.stream.is_none() {
                    self.connect_and_resume(shared);
                    if self.stream.is_none() {
                        break;
                    }
                }
                self.drain_control(shared);
                if self.window.len() >= shared.window_cap {
                    std::thread::sleep(Duration::from_millis(2));
                }
            }
            if self.window.len() >= shared.window_cap {
                return;
            }
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.window.push_back(WinEntry {
            seq,
            sent_at: Instant::now(),
            wire: m.wire,
            epoch: m.epoch,
            payload: m.payload,
        });
        self.transmit_seq(shared, seq);
    }

    /// Heartbeats and GOODBYEs travel outside the sequence space: best
    /// effort, two establishment cycles at most, dropped under partition.
    fn send_unsequenced(&mut self, shared: &Shared, kind: u8) {
        if shared.net_chaos.blackholed(shared.rank, self.dst, shared.now_ms()) {
            return;
        }
        let buf = encode_frame(kind, shared.rank, shared.incarnation, 0, 0, 0, &[]);
        for _ in 0..2 {
            if self.stream.is_none() {
                self.connect_and_resume(shared);
            }
            match &mut self.stream {
                Some(s) => match s.write_all(&buf) {
                    Ok(()) => {
                        let c = &shared.peers[self.dst].counters;
                        c.frames_tx.fetch_add(1, Ordering::Relaxed);
                        c.bytes_tx.fetch_add(buf.len() as u64, Ordering::Relaxed);
                        return;
                    }
                    Err(_) => self.drop_stream(), // retry once on a fresh stream
                },
                None => return, // couldn't connect within budget: drop frame
            }
        }
    }
}

fn sender_loop(
    shared: Arc<Shared>,
    dst: usize,
    addr: SocketAddr,
    conn_timeout: Duration,
    jitter_seed: u64,
    rx: Receiver<Outbound>,
) {
    let mut link = Link {
        dst,
        addr,
        conn_timeout,
        jitter: jitter_seed,
        stream: None,
        ever_connected: false,
        next_seq: 1,
        injected_up_to: 0,
        window: VecDeque::new(),
        ackbuf: Vec::new(),
        held_back: Vec::new(),
        stale_rounds: 0,
    };
    // Keeps draining after shutdown: frames queued before close() must
    // still reach the wire (a rank leaves a barrier as soon as it has
    // *heard* everyone — its own final ARRIVE may still sit in this
    // queue, and dropping it would read as a death to the peers). The
    // drain is bounded: `establish` refuses new connections once
    // shutdown is set, and the queue stops growing because `send`
    // rejects new frames.
    loop {
        match rx.recv_timeout(shared.hb_interval) {
            Ok(Outbound::Frame(m)) => link.admit(&shared, m),
            Ok(Outbound::Heartbeat) => {
                if !shared.done() {
                    link.send_unsequenced(&shared, KIND_HEARTBEAT);
                }
            }
            Ok(Outbound::Goodbye) => link.send_unsequenced(&shared, KIND_GOODBYE),
            Err(RecvTimeoutError::Timeout) => {} // idle tick
            Err(RecvTimeoutError::Disconnected) => {
                // Teardown closed the queue. Frames still unACKed in the
                // window are someone's pending recv — the gather's final
                // frame to rank 0, a barrier ARRIVE. Abandoning them turns
                // one injected drop into a permanent protocol hole: this
                // exit is a clean GOODBYE, so the receiver neither declares
                // us dead nor ever sees a retransmission. Keep the go-back-N
                // machinery running until the window empties, the peer
                // departs, or a bounded deadline passes (a dead peer must
                // not wedge teardown).
                let deadline = Instant::now() + (shared.hb_interval * 20).max(Duration::from_secs(2));
                while !link.window.is_empty() && Instant::now() < deadline && !shared.peers[dst].departed.load(Ordering::Acquire)
                {
                    link.drain_control(&shared);
                    link.service(&shared);
                    std::thread::sleep(Duration::from_millis(5));
                }
                break;
            }
        }
        if !link.window.is_empty() {
            link.drain_control(&shared);
            link.service(&shared);
        } else if link.stream.is_some() {
            // Idle-link EOF detection: a receiver that tore down the
            // stream (CRC strike, desync resync) starts the peer's grace
            // clock immediately — noticing only when the next admission
            // happens to write would burn most of that budget. A
            // non-blocking drain sees the EOF within one lap; the next
            // heartbeat then re-establishes and resumes the session.
            link.drain_control(&shared);
        }
    }
}

fn heartbeat_loop(shared: Arc<Shared>, senders: Vec<Option<SyncSender<Outbound>>>) {
    let hb_ms = shared.hb_interval.as_millis().max(1) as u64;
    while !shared.done() {
        std::thread::sleep(shared.hb_interval);
        for (peer, tx) in senders.iter().enumerate() {
            let Some(tx) = tx else { continue };
            // Best effort: a full queue means the sender is wedged on a
            // dead peer; skipping the beat is fine.
            let _ = tx.try_send(Outbound::Heartbeat);
            let st = &shared.peers[peer];
            let last = st.last_seen_ms.load(Ordering::Relaxed);
            if last == 0 {
                continue;
            }
            let silent = shared.now_ms().saturating_sub(last);
            if silent > hb_ms {
                st.counters.hb_misses.fetch_add(1, Ordering::Relaxed);
            }
            // Two beats of silence: suspicion, not a verdict. The next
            // frame rescinds it (counted); only the grace/miss
            // thresholds in `is_peer_dead` escalate to dead.
            if silent > 2 * hb_ms && !st.departed.load(Ordering::Acquire) {
                st.suspected.store(true, Ordering::Release);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(src: usize, wire: u64, vals: &[f64]) -> Msg {
        Msg { src, wire, epoch: 0, payload: Arc::from(vals) }
    }

    #[test]
    fn crc32_matches_the_ieee_check_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frames_carry_seq_and_a_valid_crc() {
        let buf = encode_frame(KIND_DATA, 3, 1, 42, 7, 99, &[1.0, -2.0]);
        assert_eq!(buf.len(), HEADER_LEN + 16);
        assert_eq!(u64::from_le_bytes(buf[32..40].try_into().unwrap()), 99);
        let crc = u32::from_le_bytes(buf[40..44].try_into().unwrap());
        let mut zeroed = buf.clone();
        zeroed[40..44].copy_from_slice(&[0u8; 4]);
        assert_eq!(crc32(&zeroed), crc);
        // Control frames parse and round-trip; any single-bit flip is caught.
        let ack = encode_frame(KIND_ACK, 0, 0, 0, 0, 17, &[]);
        let hdr: [u8; HEADER_LEN] = ack[..].try_into().unwrap();
        assert_eq!(parse_control(&hdr), Some((KIND_ACK, 17)));
        for bit in 0..(HEADER_LEN * 8) {
            let mut bad = hdr;
            bad[bit / 8] ^= 1 << (bit % 8);
            assert_eq!(parse_control(&bad), None, "bit {bit} flip went undetected");
        }
    }

    #[test]
    fn config_validation_rejects_inconsistent_liveness_settings() {
        let ok = TcpConfig::new(0, 2);
        assert!(ok.validate().is_ok());
        let mut c = ok.clone();
        c.hb_interval = Duration::ZERO;
        assert!(c.validate().is_err());
        let mut c = ok.clone();
        c.hb_miss_limit = 0;
        assert!(c.validate().is_err());
        let mut c = ok.clone();
        c.hb_grace_beats = 0;
        assert!(c.validate().is_err());
        let mut c = ok.clone();
        c.net_window = 0;
        assert!(c.validate().is_err());
        let mut c = ok.clone();
        c.conn_timeout = Duration::ZERO;
        assert!(c.validate().is_err());
        let mut c = ok.clone();
        c.backoff_init = Duration::from_millis(500); // > 400 ms cap
        assert!(c.validate().is_err());
        let mut c = ok;
        c.backoff_init = Duration::ZERO;
        assert!(c.validate().is_err());
    }

    #[test]
    fn tcp_fabric_routes_and_preserves_pairwise_order() {
        let mut eps = TcpTransport::fabric_localhost(3).unwrap();
        let c = eps.remove(2);
        let b = eps.remove(1);
        let a = eps.remove(0);
        assert_eq!(a.world_size(), 3);
        assert_eq!(c.rank(), 2);

        a.send(2, msg(0, 1, &[1.0]));
        a.send(2, msg(0, 1, &[2.0]));
        b.send(2, msg(1, 9, &[3.0]));

        let mut from_a = Vec::new();
        for _ in 0..3 {
            let m = c.recv(Duration::from_secs(10)).expect("message lost");
            if m.src == 0 {
                from_a.push(m.payload[0]);
            } else {
                assert_eq!((m.wire, m.payload[0]), (9, 3.0));
            }
        }
        assert_eq!(from_a, vec![1.0, 2.0], "pairwise order violated");
    }

    #[test]
    fn tcp_payload_roundtrips_bitwise() {
        let mut eps = TcpTransport::fabric_localhost(2).unwrap();
        let b = eps.remove(1);
        let a = eps.remove(0);
        let vals = [1.5e-308, -0.0, f64::MAX, std::f64::consts::PI, -1.0 / 3.0];
        a.send(
            1,
            Msg {
                src: 0,
                wire: 42,
                epoch: 7,
                payload: Arc::from(vals.as_slice()),
            },
        );
        let m = b.recv(Duration::from_secs(10)).unwrap();
        assert_eq!(m.src, 0);
        assert_eq!(m.wire, 42);
        assert_eq!(m.epoch, 7);
        assert_eq!(m.payload.len(), vals.len());
        for (x, y) in m.payload.iter().zip(vals.iter()) {
            assert_eq!(x.to_bits(), y.to_bits(), "payload not bitwise-identical");
        }
    }

    #[test]
    fn tcp_recv_timeout_is_typed_and_bounded() {
        let mut eps = TcpTransport::fabric_localhost(2).unwrap();
        let _b = eps.remove(1);
        let a = eps.remove(0);
        let t0 = Instant::now();
        let r = a.recv(Duration::from_millis(100));
        assert_eq!(r.err().map(|e| matches!(e, CommError::Timeout)), Some(true));
        assert!(t0.elapsed() < Duration::from_secs(5), "timeout not bounded");
    }

    #[test]
    fn tcp_counts_traffic_per_peer() {
        let mut eps = TcpTransport::fabric_localhost(2).unwrap();
        let b = eps.remove(1);
        let a = eps.remove(0);
        a.send(1, msg(0, 1, &[1.0, 2.0, 3.0]));
        let _ = b.recv(Duration::from_secs(10)).unwrap();
        // The sender thread bumps its counters just after the write hits
        // the kernel, so the receiver can observe the frame first: poll.
        let t0 = Instant::now();
        loop {
            let s = a.stats();
            if s.peers[1].frames_tx >= 1 && s.peers[1].bytes_tx >= (HEADER_LEN + 24) as u64 {
                break;
            }
            assert!(t0.elapsed() < Duration::from_secs(10), "tx traffic not counted");
            std::thread::sleep(Duration::from_millis(10));
        }
        let s = b.stats();
        assert!(s.peers[0].frames_rx >= 1, "rx frame not counted");
        assert_eq!(s.peers[1], PeerCounters::default(), "phantom traffic on silent peer");
    }

    #[test]
    fn tcp_detects_a_dropped_peer() {
        let mut cfgs: Vec<TcpConfig> = (0..2).map(|r| TcpConfig::new(r, 2)).collect();
        for c in &mut cfgs {
            c.hb_interval = Duration::from_millis(20);
            c.hb_miss_limit = 4;
        }
        let listeners: Vec<TcpListener> = (0..2).map(|_| TcpListener::bind("127.0.0.1:0").unwrap()).collect();
        let addrs: Vec<SocketAddr> = listeners.iter().map(|l| l.local_addr().unwrap()).collect();
        let mut eps: Vec<TcpTransport> = cfgs
            .into_iter()
            .zip(listeners)
            .map(|(c, l)| TcpTransport::with_listener(c, addrs.clone(), l).unwrap())
            .collect();
        let b = eps.remove(1);
        let a = eps.remove(0);
        // Traffic both ways so each side has heard from the other.
        a.send(1, msg(0, 1, &[1.0]));
        b.send(0, msg(1, 1, &[2.0]));
        let _ = a.recv(Duration::from_secs(10)).unwrap();
        let _ = b.recv(Duration::from_secs(10)).unwrap();
        assert!(!a.is_peer_dead(1));
        b.drop_abruptly(); // sockets close with no GOODBYE: EOF fast path
        let t0 = Instant::now();
        while !a.is_peer_dead(1) {
            assert!(t0.elapsed() < Duration::from_secs(10), "death never detected");
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    #[test]
    fn tcp_goodbye_separates_departure_from_death() {
        let mut cfgs: Vec<TcpConfig> = (0..2).map(|r| TcpConfig::new(r, 2)).collect();
        for c in &mut cfgs {
            c.hb_interval = Duration::from_millis(20);
            c.hb_miss_limit = 4;
        }
        let listeners: Vec<TcpListener> = (0..2).map(|_| TcpListener::bind("127.0.0.1:0").unwrap()).collect();
        let addrs: Vec<SocketAddr> = listeners.iter().map(|l| l.local_addr().unwrap()).collect();
        let mut eps: Vec<TcpTransport> = cfgs
            .into_iter()
            .zip(listeners)
            .map(|(c, l)| TcpTransport::with_listener(c, addrs.clone(), l).unwrap())
            .collect();
        let b = eps.remove(1);
        let a = eps.remove(0);
        a.send(1, msg(0, 1, &[1.0]));
        b.send(0, msg(1, 1, &[2.0]));
        let _ = a.recv(Duration::from_secs(10)).unwrap();
        let _ = b.recv(Duration::from_secs(10)).unwrap();
        drop(b); // graceful exit: GOODBYE travels over the live stream
                 // Far past both the EOF (grace beats) and silence windows.
        std::thread::sleep(Duration::from_millis(400));
        assert!(!a.is_peer_dead(1), "clean shutdown misread as a death");
    }

    #[test]
    fn tcp_unreachable_peer_never_hangs_sender() {
        // Rank 1's address points at a port nobody listens on: sends must
        // drop after the bounded connect budget, not wedge the caller.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let my_addr = listener.local_addr().unwrap();
        let dead_port = {
            let probe = TcpListener::bind("127.0.0.1:0").unwrap();
            probe.local_addr().unwrap().port()
            // probe drops here; the port is free and silent
        };
        let mut cfg = TcpConfig::new(0, 2);
        cfg.conn_timeout = Duration::from_millis(200);
        let addrs = vec![my_addr, SocketAddr::from(([127, 0, 0, 1], dead_port))];
        let t = TcpTransport::with_listener(cfg, addrs, listener).unwrap();
        let t0 = Instant::now();
        t.send(1, msg(0, 1, &[1.0])); // must not block
        assert!(t0.elapsed() < Duration::from_secs(1), "send blocked on a dead peer");
        assert_eq!(
            t.recv(Duration::from_millis(100))
                .err()
                .map(|e| matches!(e, CommError::Timeout)),
            Some(true)
        );
        // The sender burned its connect budget in retries.
        let t0 = Instant::now();
        while t.stats().peers[1].retries == 0 {
            assert!(t0.elapsed() < Duration::from_secs(5), "no connect retries recorded");
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(!t.is_peer_dead(1), "never-seen peer misreported as dead");
    }

    #[test]
    fn tcp_incarnation_travels_in_the_handshake() {
        let listeners: Vec<TcpListener> = (0..2).map(|_| TcpListener::bind("127.0.0.1:0").unwrap()).collect();
        let addrs: Vec<SocketAddr> = listeners.iter().map(|l| l.local_addr().unwrap()).collect();
        let mut it = listeners.into_iter();
        let mut cfg0 = TcpConfig::new(0, 2);
        cfg0.incarnation = 3;
        let a = TcpTransport::with_listener(cfg0, addrs.clone(), it.next().unwrap()).unwrap();
        let b = TcpTransport::with_listener(TcpConfig::new(1, 2), addrs, it.next().unwrap()).unwrap();
        assert_eq!(a.incarnation(), 3);
        a.send(1, msg(0, 5, &[1.0]));
        let _ = b.recv(Duration::from_secs(10)).unwrap();
        assert_eq!(b.peer_incarnation(0), 3, "handshake incarnation lost");
    }

    /// A raw fake peer: connects, HELLOs as `src`, reads the HELLO_ACK,
    /// and hands the stream back for protocol-violation tests.
    fn raw_hello(addr: SocketAddr, src: usize, incarnation: u32) -> TcpStream {
        let mut s = TcpStream::connect(addr).expect("raw connect");
        s.write_all(&encode_frame(KIND_HELLO, src, incarnation, 0, 0, 0, &[]))
            .expect("raw hello");
        let mut ack = [0u8; HEADER_LEN];
        s.read_exact(&mut ack).expect("hello ack");
        assert_eq!(parse_control(&ack).map(|(k, _)| k), Some(KIND_HELLO_ACK));
        s
    }

    #[test]
    fn oversize_frames_are_typed_rejections_that_escalate_to_a_peer_fault() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let my_addr = listener.local_addr().unwrap();
        let peer_listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addrs = vec![my_addr, peer_listener.local_addr().unwrap()];
        let mut cfg = TcpConfig::new(0, 2);
        cfg.hb_interval = Duration::from_millis(20);
        let t = TcpTransport::with_listener(cfg, addrs, listener).unwrap();
        // A peer that opens a fresh connection and sends an oversize
        // length prefix, STRIKE_LIMIT times in a row: each one is a typed
        // frame rejection, and the streak becomes a clean peer-fault.
        for i in 0..STRIKE_LIMIT {
            let mut s = raw_hello(my_addr, 1, 0);
            let mut bad = encode_frame(KIND_DATA, 1, 0, 0, 0, u64::from(i) + 1, &[]);
            bad[0..4].copy_from_slice(&(MAX_PAYLOAD_WORDS + 1).to_le_bytes());
            // Re-stamp both CRCs so only the length is at fault.
            let hcrc = crc32(&bad[..40]);
            bad[44..48].copy_from_slice(&hcrc.to_le_bytes());
            bad[40..44].copy_from_slice(&[0u8; 4]);
            let crc = crc32(&bad);
            bad[40..44].copy_from_slice(&crc.to_le_bytes());
            s.write_all(&bad).unwrap();
            // Wait for the reader to reject and close this connection.
            let mut probe = [0u8; 1];
            let _ = s.set_read_timeout(Some(Duration::from_secs(5)));
            let _ = s.read(&mut probe);
        }
        let t0 = Instant::now();
        while !t.is_peer_dead(1) {
            assert!(t0.elapsed() < Duration::from_secs(10), "oversize streak never became a peer fault");
            std::thread::sleep(Duration::from_millis(10));
        }
        let st = t.stats();
        assert!(st.peers[1].frame_rejects >= STRIKE_LIMIT as u64, "frame rejections not counted");
    }

    #[test]
    fn corrupt_frames_are_counted_and_never_delivered() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let my_addr = listener.local_addr().unwrap();
        let peer_listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addrs = vec![my_addr, peer_listener.local_addr().unwrap()];
        let t = TcpTransport::with_listener(TcpConfig::new(0, 2), addrs, listener).unwrap();
        let mut s = raw_hello(my_addr, 1, 0);
        let mut bad = encode_frame(KIND_DATA, 1, 0, 7, 0, 1, &[42.0]);
        let last = bad.len() - 1;
        bad[last] ^= 0x01; // payload bit flip after the CRC stamp
        s.write_all(&bad).unwrap();
        let t0 = Instant::now();
        while t.stats().peers[1].crc_rejects == 0 {
            assert!(t0.elapsed() < Duration::from_secs(10), "CRC rejection not counted");
            std::thread::sleep(Duration::from_millis(10));
        }
        // The corrupted payload must never surface as a message.
        assert!(matches!(t.recv(Duration::from_millis(100)), Err(CommError::Timeout)));
        assert!(!t.is_peer_dead(1), "one corrupt frame must not kill the peer");
    }

    #[test]
    fn sub_grace_stall_is_suspected_then_rescinded_never_dead() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let my_addr = listener.local_addr().unwrap();
        let peer_listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addrs = vec![my_addr, peer_listener.local_addr().unwrap()];
        let mut cfg = TcpConfig::new(0, 2);
        cfg.hb_interval = Duration::from_millis(30);
        cfg.hb_miss_limit = 40; // silence threshold 1.2 s, far beyond the stall
        cfg.hb_grace_beats = 40;
        let t = TcpTransport::with_listener(cfg, addrs, listener).unwrap();
        let mut s = raw_hello(my_addr, 1, 0);
        // Beat once, stall for > 2 beats but far under every death
        // threshold, then resume: suspicion must rise and be rescinded.
        s.write_all(&encode_frame(KIND_HEARTBEAT, 1, 0, 0, 0, 0, &[])).unwrap();
        std::thread::sleep(Duration::from_millis(150)); // 5 beats of silence
        assert!(!t.is_peer_dead(1), "sub-grace stall misread as a death");
        s.write_all(&encode_frame(KIND_HEARTBEAT, 1, 0, 0, 0, 0, &[])).unwrap();
        let t0 = Instant::now();
        while t.stats().peers[1].rescinds == 0 {
            assert!(t0.elapsed() < Duration::from_secs(10), "suspicion never rescinded");
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(!t.is_peer_dead(1), "rescinded peer still reads as dead");
    }

    #[test]
    fn mid_stream_reset_resumes_without_loss_or_reorder() {
        // Scripted connection resets on the 0→1 link: every frame still
        // arrives exactly once, in order, bit-identical — the session
        // resume replays what the RST swallowed.
        let mut eps = TcpTransport::fabric_localhost_with(2, |c| {
            c.hb_interval = Duration::from_millis(40);
            if c.rank == 0 {
                c.net_chaos = NetChaosScript::parse("7:reset=0.4").unwrap();
            }
        })
        .unwrap();
        let b = eps.remove(1);
        let a = eps.remove(0);
        let n = 64;
        for i in 0..n {
            a.send(1, msg(0, 5, &[i as f64, (i * i) as f64]));
        }
        for i in 0..n {
            let m = b.recv(Duration::from_secs(30)).expect("frame lost to a reset");
            assert_eq!(m.payload[0].to_bits(), (i as f64).to_bits(), "stream reordered or corrupted");
        }
        let t0 = Instant::now();
        while a.stats().peers[1].resumes == 0 {
            assert!(t0.elapsed() < Duration::from_secs(10), "no session resume recorded");
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}
