//! Message-protocol replacements for the shared-memory barrier and
//! agreement when the world spans real processes ([`Ctx::distributed`]).
//!
//! The in-process world funnels both through one `Arc<Detector>` — a
//! counting rendezvous on a mutex. A multi-process world has no shared
//! memory, so the same two primitives become wire protocols on reserved
//! control wires just below [`crate::comm::CTRL_WIRE`]:
//!
//! * **Barrier** — symmetric all-to-all arrival exchange: every rank sends
//!   `ARRIVE(epoch, gen)` to every peer and waits for the matching frame
//!   from each. Revocable: a death observed while waiting (dead-peer sweep)
//!   backs the waiter out with `Err`, exactly like the shared barrier.
//!   Generations reset to 0 at each agreement, so an aborted generation's
//!   stragglers are discarded by their `(epoch, gen)` stamp.
//! * **Agreement** — latest-wins view gossip: every rank rebroadcasts its
//!   current victim view `{incarnation, epoch, victims}` on a short tick,
//!   keeps only the *freshest* view received from each peer, and exits
//!   once its own view and every peer's latest view all equal their
//!   union. Views only ever grow (monotone under union), so the exit
//!   condition is stable: the exit iteration itself broadcast the final
//!   union, and a straggler that still needs it holds that frame — every
//!   rank returns the identical sorted union and epoch. Gossip rather
//!   than lock-step rounds because frames sent to a *dying* incarnation
//!   can vanish silently (the write lands in the kernel buffer of a
//!   socket whose peer is already dead), which would desynchronize any
//!   round-counting scheme; retransmission plus latest-wins makes both
//!   loss and duplication harmless. A replacement process (fresh
//!   detector, empty view) simply joins with `{}` and adopts the
//!   survivors' union one tick later.
//!
//! ## Epoch fencing and incarnations
//!
//! Control frames carry their own epoch/generation *in the payload* and
//! bypass the data-plane epoch filter — an agreement frame is how epochs
//! advance, so it cannot be fenced by them. Stale barrier frames are
//! dropped by their stamp; stale agreement frames from a victim's previous
//! incarnation are dropped by comparing the incarnation in the payload
//! against the latest one the transport's reconnect handshake reported.
//!
//! ## Scope
//!
//! A rank that leaves agreement early and then learns of a *new* failure
//! simply starts gossiping a larger view; stragglers still in the old
//! instance fold those frames in and both converge on the bigger union at
//! a consistent epoch. The residual wedge — a permanently-dead rank that
//! is never respawned — is bounded by the control timeout, which turns
//! the hang into a typed panic.

use crate::comm::{Ctx, AGREE_WIRE, BARRIER_WIRE, CTRL_WIRE, DIST_CTRL_MIN};
use crate::detect::FailureAgreement;
use crate::transport::{CommError, Msg};
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A wedged control protocol aborts loudly instead of hanging the run;
/// shares the (env-overridable) budget of [`crate::comm::recv_timeout`].
use crate::comm::recv_timeout as ctrl_timeout;

/// How often a blocked control receive re-sweeps peer liveness.
const CTRL_POLL: Duration = Duration::from_millis(20);

/// Agreement rebroadcast tick: a participant that has not converged yet
/// resends its view this often, so frames lost in a dying incarnation's
/// socket buffer never stall the exchange.
const AGREE_RESEND: Duration = Duration::from_millis(50);

impl Ctx {
    /// Fire-and-forget control frame. Control traffic bypasses the chaos
    /// op clock and the traffic ledger, mirroring the shared-memory
    /// detector whose rendezvous never counted as message ops.
    fn send_ctrl(&self, dst: usize, wire: u64, payload: &[f64]) {
        self.transport.send(
            dst,
            Msg {
                src: self.rank(),
                wire,
                epoch: self.epoch.get(),
                payload: Arc::from(payload),
            },
        );
    }

    /// Pop the next control frame from `(src, wire)`, pulling frames off
    /// the transport (and stashing everything else) until one arrives.
    /// With `abort_on_revoke`, a revocation observed while waiting returns
    /// `Err(())` — the revocable-barrier contract. Agreement runs with it
    /// off: it *is* the revocation handler and must keep collecting.
    fn recv_ctrl(&self, src: usize, wire: u64, abort_on_revoke: bool) -> Result<Arc<[f64]>, ()> {
        let mut waited = Duration::ZERO;
        loop {
            if let Some(q) = self.stash.borrow_mut().get_mut(&(src, wire)) {
                if let Some((_, d)) = q.pop_front() {
                    return Ok(d);
                }
            }
            match self.transport.recv(CTRL_POLL) {
                Ok(msg) => {
                    if msg.wire == CTRL_WIRE {
                        continue;
                    }
                    if msg.wire < DIST_CTRL_MIN && msg.epoch < self.epoch.get() {
                        continue; // data straggler from an aborted epoch
                    }
                    let agree_frame = msg.wire == AGREE_WIRE;
                    self.stash
                        .borrow_mut()
                        .entry((msg.src, msg.wire))
                        .or_default()
                        .push_back((msg.epoch, msg.payload));
                    // An agreement frame is a revocation notice: its
                    // sender is inside the failure handler, so a barrier
                    // waiter must back out now — a steady gossip stream
                    // would otherwise starve the dry-inbox arm below.
                    if agree_frame && abort_on_revoke {
                        self.sweep_dead_peers();
                        if self.detector.is_revoked() {
                            return Err(());
                        }
                    }
                }
                Err(CommError::Timeout) => {
                    // Inbox dry: only now may liveness be judged, so a
                    // frame that already crossed the wire always beats a
                    // concurrently-observed death of its sender (a rank
                    // that finished and closed its sockets is not a
                    // failure to a receiver still holding its last frame).
                    self.sweep_dead_peers();
                    if abort_on_revoke && self.detector.is_revoked() {
                        return Err(());
                    }
                    waited += CTRL_POLL;
                    if waited >= ctrl_timeout() {
                        self.partition_panic(&format!("distributed control recv (src={src}, wire={wire:#x})"));
                    }
                }
                Err(e) => panic!("rank {}: distributed control recv failed: {e}", self.rank()),
            }
        }
    }

    /// All-to-all arrival barrier; see the module docs. `Err(())` when a
    /// failure revoked the world before this generation completed.
    pub(crate) fn dist_barrier(&self) -> Result<(), ()> {
        let world = self.grid().size();
        if world == 1 {
            return Ok(());
        }
        self.sweep_dead_peers();
        if self.detector.is_revoked() {
            return Err(());
        }
        let epoch = self.epoch.get();
        let gen = self.bar_gen.get();
        let frame = [epoch as f64, gen as f64];
        for r in 0..world {
            if r != self.rank() {
                self.send_ctrl(r, BARRIER_WIRE, &frame);
            }
        }
        for r in 0..world {
            if r == self.rank() {
                continue;
            }
            loop {
                let p = self.recv_ctrl(r, BARRIER_WIRE, true)?;
                if p.len() != 2 {
                    continue;
                }
                let (e, g) = (p[0] as u64, p[1] as u64);
                if e < epoch || (e == epoch && g < gen) {
                    continue; // stale arrival from an aborted generation
                }
                // FIFO per (src, wire) makes a future stamp unreachable:
                // a peer cannot enter generation g+1 before our g frame
                // (which precedes this receive) was consumed.
                debug_assert_eq!((e, g), (epoch, gen), "barrier frame from the future");
                break;
            }
        }
        self.bar_gen.set(gen + 1);
        Ok(())
    }

    /// Pull frames off the transport into the stash for one full `wait`
    /// window. The window is never cut short: the gossip tick doubles as
    /// the rebroadcast rate limit, and an uncapped loop would let two
    /// agreeing ranks ping-pong frames at megahertz rates and flood every
    /// other inbox in the world.
    fn pump_ctrl(&self, wait: Duration) {
        let deadline = Instant::now() + wait;
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return;
            }
            match self.transport.recv(left.min(CTRL_POLL)) {
                Ok(msg) => {
                    if msg.wire == CTRL_WIRE {
                        continue;
                    }
                    if msg.wire < DIST_CTRL_MIN && msg.epoch < self.epoch.get() {
                        continue; // data straggler from an aborted epoch
                    }
                    self.stash
                        .borrow_mut()
                        .entry((msg.src, msg.wire))
                        .or_default()
                        .push_back((msg.epoch, msg.payload));
                }
                Err(CommError::Timeout) => {}
                Err(e) => panic!("rank {}: distributed control recv failed: {e}", self.rank()),
            }
        }
    }

    /// The control plane wedged past its deadline: some set of ranks is
    /// unreachable and no replacement ever healed the view — an
    /// unhealable partition. Raise the *typed* [`CommError::Partitioned`]
    /// as an unwind payload so every surviving rank that hits its own
    /// deadline surfaces the identical error (and the identical exit
    /// code) instead of a hang or an anonymous panic string.
    fn partition_panic(&self, what: &str) -> ! {
        let mut unreachable = self.known_dead();
        unreachable.sort_unstable();
        unreachable.dedup();
        let err = CommError::Partitioned { unreachable };
        eprintln!("rank {}: {what} timed out after {:?} — {err}", self.rank(), ctrl_timeout());
        std::panic::panic_any(err);
    }

    /// Latest-wins gossip agreement; see the module docs. Converges to the
    /// identical sorted victim union and new epoch on every rank, installs
    /// both into the local detector, resets the barrier generation, and
    /// flushes the aborted epoch's data frames from the stash (control
    /// frames fence themselves; data a fast peer already sent under the
    /// *new* epoch is kept).
    pub(crate) fn dist_agree(&self) -> FailureAgreement {
        let world = self.grid().size();
        let inc = self.transport.incarnation() as f64;
        // Freshest `(epoch, victims)` view seen from each peer so far.
        let mut latest: Vec<Option<(u64, Vec<usize>)>> = vec![None; world];
        let deadline = Instant::now() + ctrl_timeout();
        // When shrink mode armed an adoption during this agreement, the
        // time from launching it to convergence is the stall the shrink
        // protocol cost the survivors.
        let mut adoption_started: Option<Instant> = None;
        loop {
            self.sweep_dead_peers();
            let mut mine = self.detector.current_victims();
            mine.sort_unstable();
            mine.dedup();
            // Elastic shrink: agreement requires a frame from *every* rank,
            // so a dead rank that no launcher will re-spawn must be adopted
            // by a survivor from inside this very loop — the adopted thread
            // then joins the gossip like any replacement would.
            if self.try_shrink_adoptions(&mine) && adoption_started.is_none() {
                adoption_started = Some(Instant::now());
            }
            let epoch = self.detector.epoch();
            let mut frame = Vec::with_capacity(3 + mine.len());
            frame.push(inc);
            frame.push(epoch as f64);
            frame.push(mine.len() as f64);
            frame.extend(mine.iter().map(|&v| v as f64));
            for r in 0..world {
                if r != self.rank() {
                    self.send_ctrl(r, AGREE_WIRE, &frame);
                }
            }
            self.pump_ctrl(AGREE_RESEND);
            {
                let mut stash = self.stash.borrow_mut();
                for (r, slot) in latest.iter_mut().enumerate() {
                    if r == self.rank() {
                        continue;
                    }
                    let Some(q) = stash.get_mut(&(r, AGREE_WIRE)) else { continue };
                    while let Some((_, p)) = q.pop_front() {
                        // Frames from a dead predecessor of a respawned
                        // rank are strays of the aborted epoch: drop them.
                        if p.len() >= 3 && (p[0] as u32) >= self.transport.peer_incarnation(r) {
                            let e = p[1] as u64;
                            let n = p[2] as usize;
                            let vs = p[3..3 + n.min(p.len() - 3)].iter().map(|&v| v as usize).collect();
                            *slot = Some((e, vs));
                        }
                    }
                }
            }
            if Instant::now() >= deadline {
                self.partition_panic("distributed agreement");
            }
            if (0..world).any(|r| r != self.rank() && latest[r].is_none()) {
                continue; // someone has never spoken: rebroadcast and wait
            }
            let mut union = BTreeSet::new();
            union.extend(mine.iter().copied());
            let mut emax = epoch;
            for (e, vs) in latest.iter().flatten() {
                emax = emax.max(*e);
                union.extend(vs.iter().copied());
            }
            let union: Vec<usize> = union.into_iter().collect();
            let all_equal = latest.iter().enumerate().all(|(r, slot)| {
                r == self.rank()
                    || slot.as_ref().is_some_and(|(_, vs)| {
                        let mut s = vs.clone();
                        s.sort_unstable();
                        s.dedup();
                        s == union
                    })
            });
            if all_equal && mine == union {
                if let Some(t0) = adoption_started {
                    self.add_shrink_stall(t0.elapsed().as_secs_f64());
                }
                let epoch_new = emax + 1;
                self.detector.apply_remote_agreement(&union, epoch_new);
                self.epoch.set(epoch_new);
                self.bar_gen.set(0);
                self.stash.borrow_mut().retain(|&(_, w), q| {
                    if w >= DIST_CTRL_MIN {
                        return true;
                    }
                    q.retain(|&(e, _)| e >= epoch_new);
                    !q.is_empty()
                });
                return FailureAgreement { victims: union, epoch: epoch_new };
            }
            // Adopt what the peers know and gossip the bigger view.
            self.detector.merge_round(&union);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::fault::ChaosScript;
    use crate::grid::Grid;
    use crate::tcp::TcpTransport;
    use crate::{comm, Ctx};
    use std::sync::Arc;

    /// Spawn one thread per rank, each owning a distributed `Ctx` over an
    /// in-process localhost TCP fabric — the unit-test analogue of real
    /// child processes.
    fn run_dist<R: Send>(p: usize, q: usize, f: impl Fn(Ctx) -> R + Sync) -> Vec<R> {
        let eps = TcpTransport::fabric_localhost(p * q).expect("fabric");
        std::thread::scope(|s| {
            let handles: Vec<_> = eps
                .into_iter()
                .map(|t| {
                    let fref = &f;
                    s.spawn(move || {
                        let ctx = comm::World::distributed_ctx(Grid::new(p, q), Arc::new(ChaosScript::none()), Box::new(t));
                        fref(ctx)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("rank panicked")).collect()
        })
    }

    #[test]
    fn dist_barrier_synchronizes_and_generations_advance() {
        run_dist(2, 2, |ctx| {
            for _ in 0..5 {
                ctx.barrier();
            }
        });
    }

    #[test]
    fn dist_p2p_and_collectives_flow_over_tcp() {
        let out = run_dist(2, 2, |ctx| {
            let mut v = vec![ctx.rank() as f64];
            ctx.allreduce_sum_world(&mut v, 1);
            if ctx.rank() == 0 {
                ctx.send(3, 7, &[42.0]);
            }
            if ctx.rank() == 3 {
                assert_eq!(ctx.recv(0, 7), vec![42.0]);
            }
            ctx.barrier();
            v[0]
        });
        assert_eq!(out, vec![6.0; 4]);
    }

    #[test]
    fn dist_agreement_converges_on_announced_victim() {
        // Rank 2 plays a locally-detected victim: it revokes itself in its
        // own detector; the others learn of it purely through the exchange.
        let out = run_dist(1, 3, |ctx| {
            if ctx.rank() == 2 {
                ctx.detector.revoke(2);
            }
            let agreed = ctx.agree_on_failures();
            (agreed.victims, agreed.epoch)
        });
        for (victims, epoch) in out {
            assert_eq!(victims, vec![2], "divergent victim set");
            assert_eq!(epoch, 1, "divergent epoch");
        }
    }

    #[test]
    fn dist_agreement_merges_disjoint_views() {
        // Ranks 0 and 1 each know of a different victim; the union must
        // come out identical everywhere and the round survives in the
        // detector for the commit to clear.
        let out = run_dist(2, 2, |ctx| {
            if ctx.rank() == 0 {
                ctx.detector.revoke(2);
            }
            if ctx.rank() == 1 {
                ctx.detector.revoke(3);
            }
            let agreed = ctx.agree_on_failures();
            ctx.commit_boundary(0);
            agreed.victims
        });
        assert_eq!(out, vec![vec![2, 3]; 4]);
    }

    #[test]
    fn dist_barrier_works_after_agreement_resets_generations() {
        run_dist(1, 2, |ctx| {
            ctx.barrier();
            ctx.barrier();
            if ctx.rank() == 0 {
                ctx.detector.revoke(1);
            }
            ctx.agree_on_failures();
            ctx.commit_boundary(0);
            ctx.barrier();
            if ctx.rank() == 0 {
                ctx.send(1, 9, &[1.0]);
            } else {
                assert_eq!(ctx.recv(0, 9), vec![1.0]);
            }
            ctx.barrier();
        });
    }
}
