//! Deterministic, seeded network-fault injection for the TCP transport —
//! the wire-level sibling of [`crate::ChaosScript`] (process kills) and
//! [`crate::SdcScript`] (memory bit flips).
//!
//! A [`NetChaosScript`] is parsed from `SEED[:SPEC]` (the `--net-chaos`
//! flag / `FT_NET_CHAOS` variable) and consulted by the transport's sender
//! threads once per **first transmission** of each sequenced DATA frame.
//! Retransmits and resume replays are never re-faulted, so every injected
//! fault is recoverable by construction and a faulted run that completes is
//! bitwise identical to the fault-free run (the hardening layer delivers
//! exactly-once, in-order per link).
//!
//! ```text
//! SPEC     := item (',' item)*
//! item     := 'drop=' P          drop the frame's first transmission
//!           | 'delay=' P '@' MS  stall the sender thread MS before writing
//!           | 'dup=' P           write the frame twice back to back
//!           | 'reorder=' P       swap the frame with the next queued one
//!           | 'corrupt=' P       flip one payload bit after CRC stamping
//!           | 'reset=' P         close the connection before writing
//!           | 'part=' A '-' B '@' S ['+' D]
//!                                blackhole the directed link A→B from
//!                                transport-relative time S ms for D ms
//!                                (no '+D' = permanent partition)
//! P        := probability in [0, 1]
//! ```
//!
//! Example: `--net-chaos 7:drop=0.05,corrupt=0.01,part=0-3@500+1500`.
//!
//! Decisions are pure functions of `(seed, src, dst, seq)` — two runs with
//! the same spec perturb exactly the same frames, which is what makes the
//! chaos soak's recover-or-typed-reject contract reproducible.

/// One fault decision for a frame's first transmission. At most one fault
/// fires per frame, picked in the fixed priority order
/// corrupt > reset > drop > dup > reorder > delay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFault {
    /// Skip the write; the frame stays in the retransmit window.
    Drop,
    /// Sleep this many milliseconds before the write (head-of-line stall).
    Delay(u64),
    /// Write the frame twice (receiver must suppress the duplicate).
    Dup,
    /// Write the *next* queued frame first (sequence inversion on the wire).
    Reorder,
    /// Flip one bit of the encoded bytes after the CRC was stamped.
    Corrupt,
    /// Close the connection without writing (mid-stream RST).
    Reset,
}

/// A directed link blackhole: frames from `a` to `b` vanish during the
/// window. Asymmetric by construction — add the mirrored entry for a
/// symmetric partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetPartition {
    /// Source rank of the blackholed link.
    pub a: usize,
    /// Destination rank of the blackholed link.
    pub b: usize,
    /// Window start, in ms since the transport came up.
    pub start_ms: u64,
    /// Window length in ms; `None` = the partition never heals.
    pub dur_ms: Option<u64>,
}

/// Seeded per-frame network-fault schedule. See the module docs for the
/// spec grammar.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NetChaosScript {
    seed: u64,
    drop_p: f64,
    delay_p: f64,
    delay_ms: u64,
    dup_p: f64,
    reorder_p: f64,
    corrupt_p: f64,
    reset_p: f64,
    parts: Vec<NetPartition>,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Uniform fraction in `[0, 1)` from a hash.
fn frac(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

impl NetChaosScript {
    /// No injection at all (the default for every transport).
    pub fn none() -> NetChaosScript {
        NetChaosScript::default()
    }

    /// Whether this script can never fire.
    pub fn is_empty(&self) -> bool {
        self.drop_p == 0.0
            && self.delay_p == 0.0
            && self.dup_p == 0.0
            && self.reorder_p == 0.0
            && self.corrupt_p == 0.0
            && self.reset_p == 0.0
            && self.parts.is_empty()
    }

    /// Parse a `SEED[:SPEC]` string. A bare seed yields an empty script
    /// (useful as a placeholder); errors name the offending item.
    pub fn parse(s: &str) -> Result<NetChaosScript, String> {
        let (seed_s, spec) = match s.split_once(':') {
            Some((a, b)) => (a, Some(b)),
            None => (s, None),
        };
        let seed: u64 = seed_s
            .trim()
            .parse()
            .map_err(|_| format!("net-chaos: seed '{seed_s}' is not an unsigned integer"))?;
        let mut sc = NetChaosScript { seed, ..NetChaosScript::default() };
        let Some(spec) = spec else {
            return Ok(sc);
        };
        if spec.trim().is_empty() {
            return Err("net-chaos: empty spec after ':'".into());
        }
        for item in spec.split(',') {
            let item = item.trim();
            let (key, val) = item
                .split_once('=')
                .ok_or_else(|| format!("net-chaos: item '{item}' is not key=value"))?;
            match key {
                "drop" => sc.drop_p = prob(val, "drop")?,
                "dup" => sc.dup_p = prob(val, "dup")?,
                "reorder" => sc.reorder_p = prob(val, "reorder")?,
                "corrupt" => sc.corrupt_p = prob(val, "corrupt")?,
                "reset" => sc.reset_p = prob(val, "reset")?,
                "delay" => {
                    let (p, ms) = val
                        .split_once('@')
                        .ok_or_else(|| format!("net-chaos: delay needs P@MS, got '{val}'"))?;
                    sc.delay_p = prob(p, "delay")?;
                    sc.delay_ms = ms
                        .parse::<u64>()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or_else(|| format!("net-chaos: delay ms '{ms}' is not a positive integer"))?;
                }
                "part" => sc.parts.push(parse_part(val)?),
                _ => return Err(format!("net-chaos: unknown item '{key}' (know drop/delay/dup/reorder/corrupt/reset/part)")),
            }
        }
        Ok(sc)
    }

    /// The fault (if any) to inject on the **first transmission** of the
    /// DATA frame with sequence number `seq` on the link `src → dst`.
    /// Deterministic in `(seed, src, dst, seq)`.
    pub fn decide(&self, src: usize, dst: usize, seq: u64) -> Option<NetFault> {
        if self.is_empty() {
            return None;
        }
        let link = splitmix64(self.seed ^ ((src as u64) << 32 | dst as u64).wrapping_mul(0xD6E8FEB86659FD93));
        let draw = |salt: u64| frac(splitmix64(link ^ seq.wrapping_mul(0x2545F4914F6CDD1D) ^ salt));
        if self.corrupt_p > 0.0 && draw(0xC0) < self.corrupt_p {
            return Some(NetFault::Corrupt);
        }
        if self.reset_p > 0.0 && draw(0x51) < self.reset_p {
            return Some(NetFault::Reset);
        }
        if self.drop_p > 0.0 && draw(0xD0) < self.drop_p {
            return Some(NetFault::Drop);
        }
        if self.dup_p > 0.0 && draw(0xDD) < self.dup_p {
            return Some(NetFault::Dup);
        }
        if self.reorder_p > 0.0 && draw(0x0E) < self.reorder_p {
            return Some(NetFault::Reorder);
        }
        if self.delay_p > 0.0 && draw(0xDE) < self.delay_p {
            return Some(NetFault::Delay(self.delay_ms));
        }
        None
    }

    /// Whether the directed link `src → dst` is inside a partition window
    /// at `now_ms` (ms since the transport started). While blackholed, the
    /// sender writes nothing on the link — data, heartbeats, handshakes.
    pub fn blackholed(&self, src: usize, dst: usize, now_ms: u64) -> bool {
        self.parts
            .iter()
            .any(|p| p.a == src && p.b == dst && now_ms >= p.start_ms && p.dur_ms.is_none_or(|d| now_ms < p.start_ms + d))
    }

    /// Deterministic bit index for the [`NetFault::Corrupt`] flip of frame
    /// `seq` on `src → dst`, reduced modulo the frame's bit length by the
    /// caller.
    pub fn corrupt_bit(&self, src: usize, dst: usize, seq: u64) -> u64 {
        let link = splitmix64(self.seed ^ ((src as u64) << 32 | dst as u64).wrapping_mul(0xD6E8FEB86659FD93));
        splitmix64(link ^ seq.wrapping_mul(0x9E3779B97F4A7C15) ^ 0xB17)
    }

    /// The partition windows of this script (diagnostics / tests).
    pub fn partitions(&self) -> &[NetPartition] {
        &self.parts
    }
}

fn prob(v: &str, what: &str) -> Result<f64, String> {
    let p: f64 = v
        .parse()
        .map_err(|_| format!("net-chaos: {what} probability '{v}' is not a number"))?;
    if !(0.0..=1.0).contains(&p) {
        return Err(format!("net-chaos: {what} probability {v} outside [0, 1]"));
    }
    Ok(p)
}

fn parse_part(v: &str) -> Result<NetPartition, String> {
    let err = || format!("net-chaos: part needs A-B@START[+DUR], got '{v}'");
    let (link, when) = v.split_once('@').ok_or_else(err)?;
    let (a, b) = link.split_once('-').ok_or_else(err)?;
    let a: usize = a.parse().map_err(|_| err())?;
    let b: usize = b.parse().map_err(|_| err())?;
    if a == b {
        return Err(format!("net-chaos: part {a}-{b} is a self-link"));
    }
    let (start, dur) = match when.split_once('+') {
        Some((s, d)) => {
            let d: u64 = d.parse().map_err(|_| err())?;
            if d == 0 {
                return Err("net-chaos: part duration must be positive (omit +DUR for permanent)".into());
            }
            (s, Some(d))
        }
        None => (when, None),
    };
    let start_ms: u64 = start.parse().map_err(|_| err())?;
    Ok(NetPartition { a, b, start_ms, dur_ms: dur })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_seed_parses_to_an_empty_script() {
        let sc = NetChaosScript::parse("42").unwrap();
        assert!(sc.is_empty());
        assert_eq!(sc.decide(0, 1, 1), None);
        assert!(!sc.blackholed(0, 1, 0));
    }

    #[test]
    fn full_spec_round_trips_every_item() {
        let sc = NetChaosScript::parse("7:drop=0.5,delay=0.25@30,dup=0.1,reorder=0.1,corrupt=0.05,reset=0.02,part=0-3@500+1500")
            .unwrap();
        assert!(!sc.is_empty());
        assert_eq!(sc.partitions(), &[NetPartition { a: 0, b: 3, start_ms: 500, dur_ms: Some(1500) }]);
        assert!(!sc.blackholed(0, 3, 499));
        assert!(sc.blackholed(0, 3, 500));
        assert!(sc.blackholed(0, 3, 1999));
        assert!(!sc.blackholed(0, 3, 2000));
        assert!(!sc.blackholed(3, 0, 1000), "partition must be directed");
    }

    #[test]
    fn permanent_partition_never_heals() {
        let sc = NetChaosScript::parse("1:part=2-0@100").unwrap();
        assert!(sc.blackholed(2, 0, u64::MAX));
        assert!(!sc.blackholed(2, 0, 99));
    }

    #[test]
    fn malformed_specs_are_typed_errors() {
        for bad in [
            "x",
            "1:",
            "1:drop",
            "1:drop=2.0",
            "1:drop=-0.1",
            "1:drop=abc",
            "1:delay=0.5",
            "1:delay=0.5@0",
            "1:warp=0.5",
            "1:part=0@5",
            "1:part=0-0@5",
            "1:part=0-1@5+0",
            "1:part=0-1",
        ] {
            assert!(NetChaosScript::parse(bad).is_err(), "'{bad}' parsed");
        }
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let a = NetChaosScript::parse("5:drop=0.3,dup=0.3").unwrap();
        let b = NetChaosScript::parse("5:drop=0.3,dup=0.3").unwrap();
        let c = NetChaosScript::parse("6:drop=0.3,dup=0.3").unwrap();
        let seq_a: Vec<_> = (0..256).map(|s| a.decide(0, 1, s)).collect();
        let seq_b: Vec<_> = (0..256).map(|s| b.decide(0, 1, s)).collect();
        let seq_c: Vec<_> = (0..256).map(|s| c.decide(0, 1, s)).collect();
        assert_eq!(seq_a, seq_b, "same seed must give identical schedules");
        assert_ne!(seq_a, seq_c, "different seeds should differ");
        let fired = seq_a.iter().filter(|f| f.is_some()).count();
        assert!(fired > 64 && fired < 256, "p=0.3+0.3 fired {fired}/256");
        // Links are independent streams.
        let other: Vec<_> = (0..256).map(|s| a.decide(1, 0, s)).collect();
        assert_ne!(seq_a, other, "links share a fault stream");
    }

    #[test]
    fn probability_one_always_fires_and_priority_holds() {
        let sc = NetChaosScript::parse("9:drop=1.0,corrupt=1.0").unwrap();
        for s in 0..32 {
            assert_eq!(sc.decide(0, 1, s), Some(NetFault::Corrupt), "corrupt outranks drop");
        }
        let sc = NetChaosScript::parse("9:delay=1.0@25").unwrap();
        assert_eq!(sc.decide(0, 1, 3), Some(NetFault::Delay(25)));
    }
}
