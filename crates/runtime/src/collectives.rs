//! Tree collectives over the grid: binomial-tree broadcast and
//! fixed-shape tree sum-reduction, plus the row/column/world wrappers the
//! PBLAS layer uses.
//!
//! ## Topology
//!
//! Both collectives use the classic binomial tree over the member list,
//! rooted at the caller-named root: member at *relative index* `r`
//! (position in the member list, rotated so the root is 0) is the child of
//! `r` with its lowest set bit cleared. Depth and per-node fan-out are both
//! `⌈log₂ n⌉`, so a P-wide broadcast costs the root `⌈log₂ P⌉` sends
//! instead of the `P−1` of a linear loop — the O(log P) BLACS cost model
//! the paper's overhead analysis assumes.
//!
//! ## Determinism
//!
//! The tree shape depends only on `(members.len(), root position)` — never
//! on arrival order or timing — and each node adds its children's partial
//! sums in a fixed order (increasing subtree bit). Reductions are therefore
//! bit-reproducible run to run, which is what makes recovery replay and the
//! checksum-duplicate invariant (`copy₀ ≡ copy₁` bitwise) hold upstairs.
//! The *association* of the sum is the tree's, not left-to-right linear;
//! any fixed association is equally valid, it just has to be the same one
//! every time.
//!
//! ## Zero-copy
//!
//! Broadcast payloads travel as `Arc<[f64]>`: the root allocates the shared
//! payload once and interior nodes forward `Arc` clones to their subtrees,
//! so the payload is allocated exactly once no matter how many members the
//! broadcast has.

use crate::comm::Ctx;
use crate::tag::{Leg, Tag};
use std::sync::Arc;

/// Position of `rank` in `members`, or `None` if it is not a member.
#[inline]
fn member_index(members: &[usize], rank: usize) -> Option<usize> {
    members.iter().position(|&r| r == rank)
}

/// A broadcast that has been *posted* but not yet completed — the split-phase
/// half of [`Ctx::post_bcast_row`] / [`Ctx::post_bcast_col`].
///
/// The root's sends happen eagerly at post time (mpsc sends never block), so
/// between `post` and [`Ctx::wait_bcast`] every member is free to compute:
/// this is what lets `pdgemm` overlap the panel-`t+1` broadcast with the
/// panel-`t` local GEMM. The payload travels as a shared `Arc<[f64]>`, so
/// completion is allocation-free on the root and one receive elsewhere.
#[must_use = "a posted broadcast must be completed with wait_bcast"]
pub struct PendingBcast {
    /// Rank the completion receive comes from (the root).
    src: usize,
    wire: u64,
    /// The root keeps its payload locally instead of receiving.
    local: Option<Arc<[f64]>>,
}

impl PendingBcast {
    /// Whether the caller was the broadcast root.
    pub fn is_root(&self) -> bool {
        self.local.is_some()
    }
}

impl Ctx {
    /// Binomial-tree broadcast of `data` from `root` over `members`.
    /// Non-members return immediately; members' `data` is overwritten with
    /// the root's payload.
    pub(crate) fn bcast_group(&self, members: &[usize], root: usize, data: &mut Vec<f64>, tag: Tag) {
        let n = members.len();
        let Some(me) = member_index(members, self.rank()) else {
            return;
        };
        if n <= 1 {
            return;
        }
        let root_idx = member_index(members, root).expect("bcast: root not in group");
        let rel = (me + n - root_idx) % n;
        let wire = tag.wire(Leg::Bcast);

        // Receive from the parent (lowest set bit of `rel` cleared), or wrap
        // the local payload once if we are the root.
        let mut mask = 1usize;
        let payload: Arc<[f64]> = if rel == 0 {
            while mask < n {
                mask <<= 1;
            }
            Arc::from(&data[..])
        } else {
            while rel & mask == 0 {
                mask <<= 1;
            }
            let parent = members[((rel ^ mask) + root_idx) % n];
            self.recv_wire(parent, wire)
        };

        // Forward to our subtree, largest half first: child `rel | m` owns
        // the members `rel+m .. rel+2m`.
        let mut m = mask >> 1;
        while m > 0 {
            let child_rel = rel | m;
            if child_rel != rel && child_rel < n {
                let child = members[(child_rel + root_idx) % n];
                self.send_wire(child, wire, tag.phase(), Arc::clone(&payload));
            }
            m >>= 1;
        }

        if rel != 0 {
            if data.len() == payload.len() {
                data.copy_from_slice(&payload);
            } else {
                *data = payload.to_vec();
            }
        }
    }

    /// Fixed-shape binomial-tree element-wise sum-reduce over `members` to
    /// `root`. Deterministic: the combine order depends only on the group
    /// shape, so results are bit-reproducible (see the module docs). Only
    /// the root's `data` holds the result afterwards; other members' `data`
    /// is clobbered with their subtree's partial sums.
    pub(crate) fn reduce_sum_group(&self, members: &[usize], root: usize, data: &mut [f64], tag: Tag) {
        let n = members.len();
        let Some(me) = member_index(members, self.rank()) else {
            return;
        };
        if n <= 1 {
            return;
        }
        let root_idx = member_index(members, root).expect("reduce: root not in group");
        let rel = (me + n - root_idx) % n;
        let wire = tag.wire(Leg::Reduce);

        let mut mask = 1usize;
        while mask < n {
            if rel & mask == 0 {
                // Absorb the child subtree rooted at `rel | mask`, if any.
                let child_rel = rel | mask;
                if child_rel < n {
                    let child = members[(child_rel + root_idx) % n];
                    let part = self.recv_wire(child, wire);
                    assert_eq!(part.len(), data.len(), "reduce: length mismatch from rank {child}");
                    for (d, s) in data.iter_mut().zip(part.iter()) {
                        *d += s;
                    }
                }
            } else {
                // Hand our partial to the parent and drop out.
                let parent = members[((rel ^ mask) + root_idx) % n];
                self.send_wire(parent, wire, tag.phase(), Arc::from(&data[..]));
                break;
            }
            mask <<= 1;
        }
    }

    /// Reduce to `members[0]`, then broadcast the sums back out. The two
    /// stages run on distinct wire legs of the same tag, so back-to-back
    /// all-reduces on one tag cannot cross-talk.
    fn allreduce_sum_group(&self, members: &[usize], data: &mut [f64], tag: Tag) {
        let root = members[0];
        self.reduce_sum_group(members, root, data, tag);
        let mut v = data.to_vec();
        self.bcast_group(members, root, &mut v, tag);
        data.copy_from_slice(&v);
    }

    /// Post a *flat eager* broadcast of `data` from `root` over `members`:
    /// the root pushes the payload to every other member right now (mpsc
    /// sends are non-blocking), non-roots record where to receive from and
    /// return immediately. Complete with [`Ctx::wait_bcast`].
    ///
    /// Flat vs the binomial tree of [`Ctx::bcast_group`]: same total traffic
    /// (P−1 messages, one payload allocation), but the root's ⌈log₂ P⌉
    /// critical-path forwarding hops collapse to zero *waiting* hops because
    /// every send is posted before anyone blocks. The root pays O(P) send
    /// calls — cheap handle pushes — which it then hides under its own
    /// compute. The caller must be a member (or the root itself), otherwise
    /// the eventual `wait_bcast` would block forever.
    pub(crate) fn post_bcast_group(&self, members: &[usize], root: usize, data: &[f64], tag: Tag) -> PendingBcast {
        let wire = tag.wire(Leg::Bcast);
        if self.rank() == root {
            let payload: Arc<[f64]> = Arc::from(data);
            for &peer in members {
                if peer != root {
                    self.send_wire(peer, wire, tag.phase(), Arc::clone(&payload));
                }
            }
            PendingBcast { src: root, wire, local: Some(payload) }
        } else {
            debug_assert!(member_index(members, self.rank()).is_some(), "post_bcast: caller not in group");
            PendingBcast { src: root, wire, local: None }
        }
    }

    /// Complete a broadcast posted with [`Ctx::post_bcast_row`] /
    /// [`Ctx::post_bcast_col`], returning the root's payload.
    pub fn wait_bcast(&self, pending: PendingBcast) -> Arc<[f64]> {
        match pending.local {
            Some(p) => p,
            None => self.recv_wire(pending.src, pending.wire),
        }
    }

    /// Post an eager broadcast within this process's grid row from the
    /// process at column `root_q`. Only the root's `data` is read.
    pub fn post_bcast_row(&self, root_q: usize, data: &[f64], tag: impl Into<Tag>) -> PendingBcast {
        let members = self.row_ranks();
        let root = self.grid().rank_of(self.myrow(), root_q);
        self.post_bcast_group(&members, root, data, tag.into())
    }

    /// Post an eager broadcast within this process's grid column from the
    /// process at row `root_p`. Only the root's `data` is read.
    pub fn post_bcast_col(&self, root_p: usize, data: &[f64], tag: impl Into<Tag>) -> PendingBcast {
        let members = self.col_ranks();
        let root = self.grid().rank_of(root_p, self.mycol());
        self.post_bcast_group(&members, root, data, tag.into())
    }

    // --- broadcasts ----------------------------------------------------------

    /// Broadcast within this process's grid row from the process at column
    /// `root_q`. Root passes the payload; the others' `data` is overwritten.
    pub fn bcast_row(&self, root_q: usize, data: &mut Vec<f64>, tag: impl Into<Tag>) {
        let members = self.row_ranks();
        let root = self.grid().rank_of(self.myrow(), root_q);
        self.bcast_group(&members, root, data, tag.into());
    }

    /// Broadcast within this process's grid column from the process at row
    /// `root_p`.
    pub fn bcast_col(&self, root_p: usize, data: &mut Vec<f64>, tag: impl Into<Tag>) {
        let members = self.col_ranks();
        let root = self.grid().rank_of(root_p, self.mycol());
        self.bcast_group(&members, root, data, tag.into());
    }

    /// Broadcast to all processes from `root` (a rank).
    pub fn bcast_world(&self, root: usize, data: &mut Vec<f64>, tag: impl Into<Tag>) {
        let members: Vec<usize> = (0..self.grid().size()).collect();
        self.bcast_group(&members, root, data, tag.into());
    }

    // --- reductions -----------------------------------------------------------

    /// Sum-reduce within the grid row to column `root_q`.
    pub fn reduce_sum_row(&self, root_q: usize, data: &mut [f64], tag: impl Into<Tag>) {
        let members = self.row_ranks();
        let root = self.grid().rank_of(self.myrow(), root_q);
        self.reduce_sum_group(&members, root, data, tag.into());
    }

    /// Sum-reduce within the grid column to row `root_p`.
    pub fn reduce_sum_col(&self, root_p: usize, data: &mut [f64], tag: impl Into<Tag>) {
        let members = self.col_ranks();
        let root = self.grid().rank_of(root_p, self.mycol());
        self.reduce_sum_group(&members, root, data, tag.into());
    }

    /// All-reduce (sum) within the grid row.
    pub fn allreduce_sum_row(&self, data: &mut [f64], tag: impl Into<Tag>) {
        let members = self.row_ranks();
        self.allreduce_sum_group(&members, data, tag.into());
    }

    /// All-reduce (sum) within the grid column.
    pub fn allreduce_sum_col(&self, data: &mut [f64], tag: impl Into<Tag>) {
        let members = self.col_ranks();
        self.allreduce_sum_group(&members, data, tag.into());
    }

    /// All-reduce (sum) over the whole grid.
    pub fn allreduce_sum_world(&self, data: &mut [f64], tag: impl Into<Tag>) {
        let members: Vec<usize> = (0..self.grid().size()).collect();
        self.allreduce_sum_group(&members, data, tag.into());
    }

    /// Element-wise minimum all-reduce over the whole grid: linear gather
    /// to rank 0, then tree broadcast of the result. Used by the
    /// distributed recovery path to agree on the common rollback boundary
    /// — tiny payloads off the critical path, so the linear gather is fine.
    pub fn allreduce_min_world(&self, data: &mut [f64], tag: impl Into<Tag>) {
        let tag = tag.into();
        let world = self.grid().size();
        if world > 1 {
            if self.rank() == 0 {
                for src in 1..world {
                    let part = self.recv_wire(src, tag.wire(Leg::Reduce));
                    for (d, p) in data.iter_mut().zip(part.iter()) {
                        *d = d.min(*p);
                    }
                }
            } else {
                self.send_wire(0, tag.wire(Leg::Reduce), tag.phase(), Arc::from(&*data));
            }
        }
        let mut v = data.to_vec();
        self.bcast_world(0, &mut v, tag);
        data.copy_from_slice(&v);
    }
}

#[cfg(test)]
mod tests {
    use crate::{run_spmd, FaultScript};

    #[test]
    fn row_and_col_broadcast() {
        run_spmd(2, 3, FaultScript::none(), |ctx| {
            // Row broadcast from column 1: payload identifies the row.
            let mut d = if ctx.mycol() == 1 { vec![ctx.myrow() as f64 * 10.0] } else { vec![] };
            ctx.bcast_row(1, &mut d, 5);
            assert_eq!(d, vec![ctx.myrow() as f64 * 10.0]);

            // Column broadcast from row 0.
            let mut d = if ctx.myrow() == 0 { vec![ctx.mycol() as f64] } else { vec![] };
            ctx.bcast_col(0, &mut d, 6);
            assert_eq!(d, vec![ctx.mycol() as f64]);
        });
    }

    #[test]
    fn world_broadcast() {
        run_spmd(2, 2, FaultScript::none(), |ctx| {
            let mut d = if ctx.rank() == 3 { vec![42.0] } else { vec![] };
            ctx.bcast_world(3, &mut d, 9);
            assert_eq!(d, vec![42.0]);
        });
    }

    #[test]
    fn world_broadcast_on_16_ranks_is_logarithmic_at_the_root() {
        // The acceptance bar for the tree rewrite: on a 16-process grid the
        // broadcast root performs ⌈log₂ 16⌉ = 4 sends, not the 15 of a
        // linear root loop. Total message count is still P−1 (every other
        // member receives exactly once).
        let out = run_spmd(4, 4, FaultScript::none(), |ctx| {
            let before = ctx.msgs_sent();
            let mut d = if ctx.rank() == 0 { vec![3.5; 257] } else { vec![] };
            ctx.bcast_world(0, &mut d, 11);
            assert_eq!(d, vec![3.5; 257]);
            ctx.msgs_sent() - before
        });
        assert!(out[0] <= 4, "root sent {} messages; tree broadcast should send ≤ ⌈log₂ 16⌉ = 4", out[0]);
        let total: u64 = out.iter().sum();
        assert_eq!(total, 15, "a 16-member broadcast delivers exactly 15 messages");
        let max_fanout = out.iter().max().unwrap();
        assert!(*max_fanout <= 4, "some member forwarded {max_fanout} > log₂ 16 messages");
    }

    #[test]
    fn reduce_on_16_ranks_has_logarithmic_fanin_at_the_root() {
        let out = run_spmd(4, 4, FaultScript::none(), |ctx| {
            let before = ctx.msgs_sent();
            let mut d = vec![1.0; 33];
            ctx.reduce_sum_col(0, &mut d, 12);
            ctx.reduce_sum_row(0, &mut d, 13);
            (ctx.msgs_sent() - before, d)
        });
        // Everyone but the final root sends exactly one partial per reduce
        // it participates in as a non-root.
        assert_eq!(out[0].0, 0, "reduce root must not send");
        // Root of both reductions holds the world total: 16 ones per slot.
        assert_eq!(out[0].1, vec![16.0; 33]);
    }

    #[test]
    fn deterministic_row_reduce() {
        let results = run_spmd(2, 4, FaultScript::none(), |ctx| {
            let mut d = vec![ctx.mycol() as f64 + 1.0, 1.0];
            ctx.reduce_sum_row(0, &mut d, 11);
            if ctx.mycol() == 0 {
                Some(d)
            } else {
                None
            }
        });
        // Each row root holds [1+2+3+4, 4].
        for r in results.into_iter().flatten() {
            assert_eq!(r, vec![10.0, 4.0]);
        }
    }

    #[test]
    fn allreduce_world() {
        let results = run_spmd(2, 2, FaultScript::none(), |ctx| {
            let mut d = vec![ctx.rank() as f64];
            ctx.allreduce_sum_world(&mut d, 21);
            d[0]
        });
        assert_eq!(results, vec![6.0; 4]);
    }

    #[test]
    fn col_reduce_to_row1() {
        let results = run_spmd(3, 2, FaultScript::none(), |ctx| {
            let mut d = vec![(ctx.myrow() + 1) as f64];
            ctx.reduce_sum_col(1, &mut d, 31);
            (ctx.myrow() == 1).then_some(d[0])
        });
        let sums: Vec<f64> = results.into_iter().flatten().collect();
        assert_eq!(sums, vec![6.0, 6.0]);
    }

    #[test]
    fn posted_broadcast_overlaps_compute() {
        run_spmd(2, 3, FaultScript::none(), |ctx| {
            // Two broadcasts in flight at once on distinct tags — the
            // double-buffered pdgemm pattern.
            let d0 = vec![ctx.myrow() as f64; 4];
            let p0 = ctx.post_bcast_row(0, &d0, 41);
            let d1 = vec![ctx.myrow() as f64 + 10.0; 4];
            let p1 = ctx.post_bcast_row(1, &d1, 42);
            // "Compute" happens here, then completion in post order.
            let r0 = ctx.wait_bcast(p0);
            let r1 = ctx.wait_bcast(p1);
            assert_eq!(&r0[..], &vec![ctx.myrow() as f64; 4][..]);
            assert_eq!(&r1[..], &vec![ctx.myrow() as f64 + 10.0; 4][..]);
        });
    }

    #[test]
    fn posted_broadcast_matches_tree_traffic() {
        // Flat eager broadcast delivers exactly P−1 messages, like the tree.
        let out = run_spmd(1, 4, FaultScript::none(), |ctx| {
            let before = ctx.msgs_sent();
            let d = vec![2.5; 8];
            let p = ctx.post_bcast_row(2, &d, 43);
            let r = ctx.wait_bcast(p);
            assert_eq!(&r[..], &[2.5; 8][..]);
            ctx.msgs_sent() - before
        });
        assert_eq!(out.iter().sum::<u64>(), 3);
    }

    #[test]
    fn posted_col_broadcast() {
        run_spmd(3, 2, FaultScript::none(), |ctx| {
            let d = vec![ctx.mycol() as f64 * 2.0];
            let p = ctx.post_bcast_col(2, &d, 44);
            assert_eq!(p.is_root(), ctx.myrow() == 2);
            let r = ctx.wait_bcast(p);
            assert_eq!(&r[..], &[ctx.mycol() as f64 * 2.0][..]);
        });
    }

    #[test]
    fn back_to_back_allreduces_on_one_tag_do_not_cross_talk() {
        run_spmd(2, 2, FaultScript::none(), |ctx| {
            let mut a = vec![1.0];
            let mut b = vec![10.0];
            ctx.allreduce_sum_world(&mut a, 77);
            ctx.allreduce_sum_world(&mut b, 77);
            assert_eq!(a, vec![4.0]);
            assert_eq!(b, vec![40.0]);
        });
    }
}
