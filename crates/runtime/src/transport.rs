//! The pluggable point-to-point transport underneath [`crate::Ctx`].
//!
//! Everything above this layer — selective receive, tree collectives,
//! barriers, fault handling — is written against the [`Transport`] trait,
//! so the wire substrate can be swapped without touching the algorithms.
//! The default is [`MpscTransport`], an in-process fabric over
//! `std::sync::mpsc` (one unbounded channel per endpoint). Tests wrap it
//! to observe or perturb traffic; a real MPI-backed transport would slot
//! in the same way.
//!
//! Payloads travel as `Arc<[f64]>`: forwarding a message (as the interior
//! nodes of a broadcast tree do) clones the `Arc`, not the data, so a
//! P-wide broadcast allocates the payload exactly once.
//!
//! ## Peer-death signaling
//!
//! A process killed by the chaos injector *closes* its endpoint
//! ([`Transport::close`]): the fabric marks the rank dead, subsequent
//! messages to it are dropped on the floor, and survivors asking
//! [`Transport::is_peer_dead`] see the death instead of blocking forever.
//! `recv` therefore returns a typed [`CommError`] — never a panic — and
//! the layer above decides whether a timeout is a protocol deadlock or a
//! failure to run agreement on. When the replacement process takes over
//! the dead rank it calls [`Transport::reopen`].

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::Duration;

/// Typed communication failure, surfaced by [`Transport::recv`] and
/// [`crate::Ctx::try_recv`] instead of a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// No message arrived within the timeout.
    Timeout,
    /// The awaited peer's endpoint is closed (fail-stop death observed).
    PeerDead {
        /// Rank whose endpoint is closed.
        peer: usize,
    },
    /// The world has been revoked by a failure notification: the current
    /// communication epoch is dead and survivors must run agreement.
    Revoked,
    /// This endpoint itself is closed / the fabric was torn down.
    Closed,
    /// The fabric is partitioned: the listed peers stayed unreachable past
    /// every retry and agreement deadline. Unlike a death, nobody can
    /// recover this — the run ends with this same typed error on every
    /// rank that can still make progress.
    Partitioned {
        /// Sorted ranks this endpoint could not reach.
        unreachable: Vec<usize>,
    },
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::Timeout => write!(f, "receive timed out"),
            CommError::PeerDead { peer } => write!(f, "peer rank {peer} is dead (endpoint closed)"),
            CommError::Revoked => write!(f, "communication epoch revoked by a failure"),
            CommError::Closed => write!(f, "local endpoint closed"),
            CommError::Partitioned { unreachable } => {
                write!(f, "network partition: agreement timed out, ranks {unreachable:?} unreachable")
            }
        }
    }
}

/// One message on the wire. `wire` is the encoded `(Tag, Leg)` mailbox key
/// (see [`crate::tag::Tag`]); the payload is shared, never deep-copied in
/// transit. `epoch` is the sender's communication epoch: receivers drop
/// messages from epochs older than their own (ULFM-style revocation — an
/// aborted collective's stragglers must not leak into the re-execution).
#[derive(Debug, Clone)]
pub struct Msg {
    /// Sender's rank.
    pub src: usize,
    /// Encoded mailbox key (tag + collective leg).
    pub wire: u64,
    /// Sender's communication epoch at send time.
    pub epoch: u64,
    /// Shared payload.
    pub payload: Arc<[f64]>,
}

/// Per-peer wire counters kept by transports that do real I/O (see
/// [`crate::tcp::TcpTransport`]). All zeros for in-process fabrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeerCounters {
    /// Frames written to this peer (data + heartbeats + handshakes).
    pub frames_tx: u64,
    /// Bytes written to this peer, framing included.
    pub bytes_tx: u64,
    /// Frames read from this peer.
    pub frames_rx: u64,
    /// Bytes read from this peer, framing included.
    pub bytes_rx: u64,
    /// Connect attempts beyond the first, per connection establishment.
    pub retries: u64,
    /// Successful re-establishments after the initial connect.
    pub reconnects: u64,
    /// Heartbeat intervals that elapsed with no traffic from the peer.
    pub hb_misses: u64,
    /// Sequenced frames written more than once (NAK rewinds, stale-window
    /// timer resends, resume replays).
    pub retransmits: u64,
    /// Inbound frames discarded as already-delivered duplicates.
    pub dup_suppressed: u64,
    /// Session resumes: reconnect handshakes that replayed a non-empty
    /// in-flight window.
    pub resumes: u64,
    /// Inbound frames rejected for a CRC mismatch.
    pub crc_rejects: u64,
    /// Inbound frames rejected for a malformed header (oversize length,
    /// bad kind).
    pub frame_rejects: u64,
    /// Suspicions rescinded: the peer crossed the slow-peer grace line and
    /// then proved alive before being declared dead.
    pub rescinds: u64,
}

impl PeerCounters {
    /// Number of `f64` slots one peer row occupies in the flat encoding.
    pub const WIDTH: usize = 13;

    /// Accumulate another peer's counters into this one.
    pub fn merge(&mut self, o: &PeerCounters) {
        self.frames_tx += o.frames_tx;
        self.bytes_tx += o.bytes_tx;
        self.frames_rx += o.frames_rx;
        self.bytes_rx += o.bytes_rx;
        self.retries += o.retries;
        self.reconnects += o.reconnects;
        self.hb_misses += o.hb_misses;
        self.retransmits += o.retransmits;
        self.dup_suppressed += o.dup_suppressed;
        self.resumes += o.resumes;
        self.crc_rejects += o.crc_rejects;
        self.frame_rejects += o.frame_rejects;
        self.rescinds += o.rescinds;
    }

    fn to_row(self) -> [f64; Self::WIDTH] {
        [
            self.frames_tx as f64,
            self.bytes_tx as f64,
            self.frames_rx as f64,
            self.bytes_rx as f64,
            self.retries as f64,
            self.reconnects as f64,
            self.hb_misses as f64,
            self.retransmits as f64,
            self.dup_suppressed as f64,
            self.resumes as f64,
            self.crc_rejects as f64,
            self.frame_rejects as f64,
            self.rescinds as f64,
        ]
    }

    fn from_row(r: &[f64]) -> PeerCounters {
        PeerCounters {
            frames_tx: r[0] as u64,
            bytes_tx: r[1] as u64,
            frames_rx: r[2] as u64,
            bytes_rx: r[3] as u64,
            retries: r[4] as u64,
            reconnects: r[5] as u64,
            hb_misses: r[6] as u64,
            retransmits: r[7] as u64,
            dup_suppressed: r[8] as u64,
            resumes: r[9] as u64,
            crc_rejects: r[10] as u64,
            frame_rejects: r[11] as u64,
            rescinds: r[12] as u64,
        }
    }
}

/// Snapshot of a transport's per-peer counters, indexed by peer rank.
/// Empty for transports that keep none. Round-trips through a flat `f64`
/// row so it can ride the same sum-reduction as the traffic ledger.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// One row per peer rank (the own-rank row stays zero).
    pub peers: Vec<PeerCounters>,
}

impl TransportStats {
    /// Sum over all peers.
    pub fn total(&self) -> PeerCounters {
        let mut t = PeerCounters::default();
        for p in &self.peers {
            t.merge(p);
        }
        t
    }

    /// Element-wise accumulate (peer-by-peer) for grid-wide aggregation.
    pub fn merge(&mut self, other: &TransportStats) {
        if self.peers.len() < other.peers.len() {
            self.peers.resize(other.peers.len(), PeerCounters::default());
        }
        for (s, o) in self.peers.iter_mut().zip(other.peers.iter()) {
            s.merge(o);
        }
    }

    /// Flatten to `world · PeerCounters::WIDTH` floats (summable).
    pub fn to_f64_rows(&self, world: usize) -> Vec<f64> {
        let mut out = vec![0.0; world * PeerCounters::WIDTH];
        for (i, p) in self.peers.iter().enumerate().take(world) {
            out[i * PeerCounters::WIDTH..(i + 1) * PeerCounters::WIDTH].copy_from_slice(&p.to_row());
        }
        out
    }

    /// Inverse of [`TransportStats::to_f64_rows`].
    pub fn from_f64_rows(rows: &[f64]) -> TransportStats {
        let peers = rows.chunks_exact(PeerCounters::WIDTH).map(PeerCounters::from_row).collect();
        TransportStats { peers }
    }
}

/// A process's endpoint in some message fabric.
///
/// Implementations must deliver messages reliably and, per `(src, dst)`
/// pair, in order — the selective-receive layer in [`crate::Ctx`] provides
/// per-`(src, tag)` FIFO on top of that. `send` must not block on the
/// receiver (the SPMD protocols assume buffered sends).
pub trait Transport: Send {
    /// This endpoint's rank.
    fn rank(&self) -> usize;

    /// Number of endpoints in the fabric.
    fn world_size(&self) -> usize;

    /// Deliver `msg` to `dst`'s inbox. Must not block. Sends to a closed
    /// endpoint are silently dropped (fail-stop semantics).
    fn send(&self, dst: usize, msg: Msg);

    /// Blocking receive of the next inbound message, in arrival order.
    /// Returns [`CommError::Timeout`] when nothing arrives in time and
    /// [`CommError::Closed`] when the fabric is gone.
    fn recv(&self, timeout: Duration) -> Result<Msg, CommError>;

    /// Close this endpoint: the process is dead, peers observe it via
    /// [`Transport::is_peer_dead`]. Default: no-op (fabrics without death
    /// signaling).
    fn close(&self) {}

    /// Reopen this endpoint: a replacement process has taken over the
    /// rank. Default: no-op.
    fn reopen(&self) {}

    /// Whether `peer`'s endpoint is currently closed. Default: `false`
    /// (fabrics without death signaling never report a dead peer).
    fn is_peer_dead(&self, _peer: usize) -> bool {
        false
    }

    /// This endpoint's incarnation number: 0 for an original process, 1+
    /// for a respawned replacement taking over the rank. Default: 0.
    fn incarnation(&self) -> u32 {
        0
    }

    /// Latest incarnation observed from `peer` (e.g. via a reconnect
    /// handshake). Default: 0.
    fn peer_incarnation(&self, _peer: usize) -> u32 {
        0
    }

    /// Snapshot of per-peer wire counters. Default: empty (no counters).
    fn stats(&self) -> TransportStats {
        TransportStats::default()
    }
}

/// The default in-process fabric: one unbounded `std::sync::mpsc` channel
/// per endpoint, senders shared by everyone, plus a shared dead-endpoint
/// mask for peer-death signaling.
pub struct MpscTransport {
    rank: usize,
    txs: Arc<Vec<Sender<Msg>>>,
    rx: Receiver<Msg>,
    dead: Arc<Vec<AtomicBool>>,
}

impl MpscTransport {
    /// Build a fully connected fabric of `n` endpoints.
    pub fn fabric(n: usize) -> Vec<MpscTransport> {
        let mut txs = Vec::with_capacity(n);
        let mut rxs = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = channel();
            txs.push(tx);
            rxs.push(rx);
        }
        let txs = Arc::new(txs);
        let dead: Arc<Vec<AtomicBool>> = Arc::new((0..n).map(|_| AtomicBool::new(false)).collect());
        rxs.into_iter()
            .enumerate()
            .map(|(rank, rx)| MpscTransport { rank, txs: Arc::clone(&txs), rx, dead: Arc::clone(&dead) })
            .collect()
    }
}

impl Transport for MpscTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn world_size(&self) -> usize {
        self.txs.len()
    }

    fn send(&self, dst: usize, msg: Msg) {
        if self.dead[dst].load(Ordering::Acquire) {
            return; // the endpoint is closed; the message vanishes
        }
        // A send can still fail if the whole world is being torn down;
        // that is indistinguishable from a closed endpoint — drop.
        let _ = self.txs[dst].send(msg);
    }

    fn recv(&self, timeout: Duration) -> Result<Msg, CommError> {
        match self.rx.recv_timeout(timeout) {
            Ok(m) => Ok(m),
            Err(RecvTimeoutError::Timeout) => Err(CommError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(CommError::Closed),
        }
    }

    fn close(&self) {
        self.dead[self.rank].store(true, Ordering::Release);
    }

    fn reopen(&self) {
        self.dead[self.rank].store(false, Ordering::Release);
    }

    fn is_peer_dead(&self, peer: usize) -> bool {
        self.dead[peer].load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(src: usize, wire: u64, val: f64) -> Msg {
        Msg { src, wire, epoch: 0, payload: Arc::from([val].as_slice()) }
    }

    #[test]
    fn fabric_routes_and_preserves_pairwise_order() {
        let mut eps = MpscTransport::fabric(3);
        let c = eps.remove(2);
        let b = eps.remove(1);
        let a = eps.remove(0);
        assert_eq!(a.world_size(), 3);
        assert_eq!(c.rank(), 2);

        a.send(2, msg(0, 1, 1.0));
        a.send(2, msg(0, 1, 2.0));
        b.send(2, msg(1, 9, 3.0));

        let mut from_a = Vec::new();
        for _ in 0..3 {
            let m = c.recv(Duration::from_secs(5)).expect("message lost");
            if m.src == 0 {
                from_a.push(m.payload[0]);
            } else {
                assert_eq!((m.wire, m.payload[0]), (9, 3.0));
            }
        }
        assert_eq!(from_a, vec![1.0, 2.0], "pairwise order violated");
        assert_eq!(c.recv(Duration::from_millis(10)).err(), Some(CommError::Timeout), "phantom message");
    }

    #[test]
    fn payloads_are_shared_not_copied() {
        let mut eps = MpscTransport::fabric(2);
        let b = eps.remove(1);
        let a = eps.remove(0);
        let payload: Arc<[f64]> = Arc::from(vec![7.0; 32].as_slice());
        a.send(1, Msg { src: 0, wire: 0, epoch: 0, payload: Arc::clone(&payload) });
        let got = b.recv(Duration::from_secs(5)).unwrap().payload;
        assert!(Arc::ptr_eq(&payload, &got), "transport deep-copied the payload");
    }

    #[test]
    fn closed_endpoint_drops_traffic_and_is_visible_to_peers() {
        let mut eps = MpscTransport::fabric(2);
        let b = eps.remove(1);
        let a = eps.remove(0);
        assert!(!a.is_peer_dead(1));

        b.close();
        assert!(a.is_peer_dead(1), "death not visible to the peer");
        a.send(1, msg(0, 4, 1.0));
        // The message vanished: nothing arrives even though it was "sent".
        assert_eq!(b.recv(Duration::from_millis(10)).err(), Some(CommError::Timeout));

        // The replacement reopens the endpoint and traffic flows again.
        b.reopen();
        assert!(!a.is_peer_dead(1));
        a.send(1, msg(0, 4, 2.0));
        assert_eq!(b.recv(Duration::from_secs(5)).unwrap().payload[0], 2.0);
    }
}
