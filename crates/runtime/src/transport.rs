//! The pluggable point-to-point transport underneath [`crate::Ctx`].
//!
//! Everything above this layer — selective receive, tree collectives,
//! barriers, fault handling — is written against the [`Transport`] trait,
//! so the wire substrate can be swapped without touching the algorithms.
//! The default is [`MpscTransport`], an in-process fabric over
//! `std::sync::mpsc` (one unbounded channel per endpoint). Tests wrap it
//! to observe or perturb traffic; a real MPI-backed transport would slot
//! in the same way.
//!
//! Payloads travel as `Arc<[f64]>`: forwarding a message (as the interior
//! nodes of a broadcast tree do) clones the `Arc`, not the data, so a
//! P-wide broadcast allocates the payload exactly once.

use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::Duration;

/// One message on the wire. `wire` is the encoded `(Tag, Leg)` mailbox key
/// (see [`crate::tag::Tag`]); the payload is shared, never deep-copied in
/// transit.
pub struct Msg {
    /// Sender's rank.
    pub src: usize,
    /// Encoded mailbox key (tag + collective leg).
    pub wire: u64,
    /// Shared payload.
    pub payload: Arc<[f64]>,
}

/// A process's endpoint in some message fabric.
///
/// Implementations must deliver messages reliably and, per `(src, dst)`
/// pair, in order — the selective-receive layer in [`crate::Ctx`] provides
/// per-`(src, tag)` FIFO on top of that. `send` must not block on the
/// receiver (the SPMD protocols assume buffered sends).
pub trait Transport: Send {
    /// This endpoint's rank.
    fn rank(&self) -> usize;

    /// Number of endpoints in the fabric.
    fn world_size(&self) -> usize;

    /// Deliver `msg` to `dst`'s inbox. Must not block.
    fn send(&self, dst: usize, msg: Msg);

    /// Blocking receive of the next inbound message, in arrival order.
    /// Returns `None` on timeout (the caller turns that into a loud
    /// deadlock diagnosis).
    fn recv(&self, timeout: Duration) -> Option<Msg>;
}

/// The default in-process fabric: one unbounded `std::sync::mpsc` channel
/// per endpoint, senders shared by everyone.
pub struct MpscTransport {
    rank: usize,
    txs: Arc<Vec<Sender<Msg>>>,
    rx: Receiver<Msg>,
}

impl MpscTransport {
    /// Build a fully connected fabric of `n` endpoints.
    pub fn fabric(n: usize) -> Vec<MpscTransport> {
        let mut txs = Vec::with_capacity(n);
        let mut rxs = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = channel();
            txs.push(tx);
            rxs.push(rx);
        }
        let txs = Arc::new(txs);
        rxs.into_iter()
            .enumerate()
            .map(|(rank, rx)| MpscTransport { rank, txs: Arc::clone(&txs), rx })
            .collect()
    }
}

impl Transport for MpscTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn world_size(&self) -> usize {
        self.txs.len()
    }

    fn send(&self, dst: usize, msg: Msg) {
        self.txs[dst].send(msg).expect("send: world torn down");
    }

    fn recv(&self, timeout: Duration) -> Option<Msg> {
        match self.rx.recv_timeout(timeout) {
            Ok(m) => Some(m),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => panic!("recv: world torn down"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fabric_routes_and_preserves_pairwise_order() {
        let mut eps = MpscTransport::fabric(3);
        let c = eps.remove(2);
        let b = eps.remove(1);
        let a = eps.remove(0);
        assert_eq!(a.world_size(), 3);
        assert_eq!(c.rank(), 2);

        a.send(2, Msg { src: 0, wire: 1, payload: Arc::from([1.0].as_slice()) });
        a.send(2, Msg { src: 0, wire: 1, payload: Arc::from([2.0].as_slice()) });
        b.send(2, Msg { src: 1, wire: 9, payload: Arc::from([3.0].as_slice()) });

        let mut from_a = Vec::new();
        for _ in 0..3 {
            let m = c.recv(Duration::from_secs(5)).expect("message lost");
            if m.src == 0 {
                from_a.push(m.payload[0]);
            } else {
                assert_eq!((m.wire, m.payload[0]), (9, 3.0));
            }
        }
        assert_eq!(from_a, vec![1.0, 2.0], "pairwise order violated");
        assert!(c.recv(Duration::from_millis(10)).is_none(), "phantom message");
    }

    #[test]
    fn payloads_are_shared_not_copied() {
        let mut eps = MpscTransport::fabric(2);
        let b = eps.remove(1);
        let a = eps.remove(0);
        let payload: Arc<[f64]> = Arc::from(vec![7.0; 32].as_slice());
        a.send(1, Msg { src: 0, wire: 0, payload: Arc::clone(&payload) });
        let got = b.recv(Duration::from_secs(5)).unwrap().payload;
        assert!(Arc::ptr_eq(&payload, &got), "transport deep-copied the payload");
    }
}
