//! Typed message tags and the per-phase traffic ledger.
//!
//! Historically every protocol above the runtime picked a hex range by
//! convention (`0x100` for panels, `0x300` for snapshots, …) and did raw
//! `u64` arithmetic on it. [`Tag`] replaces that: each variant names the
//! subsystem a message belongs to, carries a small per-protocol channel
//! number, and maps onto a [`TrafficPhase`] so the runtime can attribute
//! every byte sent to the paper's overhead decomposition (Table 1) without
//! any cooperation from the algorithm layer.

/// Accounting bucket for the traffic ledger, mirroring the overhead
/// decomposition of the paper: panel factorization, trailing-matrix
/// updates, checksum maintenance, checkpointing and recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficPhase {
    /// Panel factorization (PDLAHRD) internals.
    Panel,
    /// Trailing-matrix right/left updates and SUMMA multiplies.
    TrailingUpdate,
    /// Checksum encoding, verification and scrubbing.
    ChecksumUpdate,
    /// Diskless snapshots, bookkeeping and checkpoint/restart images.
    Checkpoint,
    /// Post-failure data reconstruction.
    Recovery,
    /// Everything else: tests, verification harnesses, gathers.
    Other,
}

impl TrafficPhase {
    /// Number of phases (the ledger's array dimension).
    pub const COUNT: usize = 6;

    /// All phases, in ledger order.
    pub const ALL: [TrafficPhase; TrafficPhase::COUNT] = [
        TrafficPhase::Panel,
        TrafficPhase::TrailingUpdate,
        TrafficPhase::ChecksumUpdate,
        TrafficPhase::Checkpoint,
        TrafficPhase::Recovery,
        TrafficPhase::Other,
    ];

    /// Stable index of this phase into the ledger array.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            TrafficPhase::Panel => 0,
            TrafficPhase::TrailingUpdate => 1,
            TrafficPhase::ChecksumUpdate => 2,
            TrafficPhase::Checkpoint => 3,
            TrafficPhase::Recovery => 4,
            TrafficPhase::Other => 5,
        }
    }

    /// Human-readable phase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            TrafficPhase::Panel => "panel",
            TrafficPhase::TrailingUpdate => "trailing-update",
            TrafficPhase::ChecksumUpdate => "checksum-update",
            TrafficPhase::Checkpoint => "checkpoint",
            TrafficPhase::Recovery => "recovery",
            TrafficPhase::Other => "other",
        }
    }
}

/// A typed message tag.
///
/// The variant names the owning subsystem (and thereby the
/// [`TrafficPhase`] the message is accounted under); the payload is a
/// per-subsystem channel number, so two protocols can never collide even
/// if they pick the same number. Free-form numeric tags used by tests and
/// examples convert implicitly via `From<{integer}>` into [`Tag::User`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tag {
    /// Free-form tag (tests, examples, gathers). Phase: `Other`.
    User(u32),
    /// Panel factorization channels. Phase: `Panel`.
    Panel(u16),
    /// Trailing-update / SUMMA channels. Phase: `TrailingUpdate`.
    Trailing(u16),
    /// Checksum encode/verify/scrub channels. Phase: `ChecksumUpdate`.
    Checksum(u16),
    /// Snapshot / bookkeeping / checkpoint-image channels. Phase: `Checkpoint`.
    Checkpoint(u16),
    /// Recovery-protocol channels. Phase: `Recovery`.
    Recovery(u16),
    /// Serving-layer per-job channels (result gathers, residual checks,
    /// ledger aggregation of one scheduled job). Construct through
    /// [`Tag::job`], which folds the job id into the channel number so two
    /// concurrent grids whose TCP connections overlap can never alias each
    /// other's collective tags. Phase: `Other`.
    Job(u16),
}

/// Number of per-job channels available to [`Tag::job`] (low bits of the
/// [`Tag::Job`] channel number).
pub const JOB_TAG_CHANNELS: u16 = 1 << 6;

/// Number of distinct job lanes [`Tag::job`] spreads job ids over (high
/// bits of the [`Tag::Job`] channel number). `JOB_TAG_LANES ·
/// JOB_TAG_CHANNELS` exactly fills the `u16` channel space.
pub const JOB_TAG_LANES: u16 = 1 << 10;

/// Collective sub-channel, encoded in the low wire bits so a collective
/// can never be confused with point-to-point traffic on the same [`Tag`]
/// (this replaces the old `tag.wrapping_add(1)` trick inside all-reduce).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Leg {
    P2p = 0,
    Reduce = 1,
    Bcast = 2,
}

impl Tag {
    /// Tag for serving-layer traffic of one scheduled job.
    ///
    /// `job` is the job id (folded modulo [`JOB_TAG_LANES`] into the lane
    /// bits) and `chan` the channel within the job (must be below
    /// [`JOB_TAG_CHANNELS`]). Jobs run on disjoint rank subsets with
    /// private fabrics, but the lane separation guarantees that even if
    /// two grids ever shared a connection their collectives could not
    /// alias. A debug assertion rejects out-of-range channels.
    #[must_use]
    pub fn job(job: u64, chan: u16) -> Tag {
        debug_assert!(chan < JOB_TAG_CHANNELS, "job tag channel {chan} out of range (must be < {JOB_TAG_CHANNELS})");
        let lane = (job % JOB_TAG_LANES as u64) as u16;
        Tag::Job(lane * JOB_TAG_CHANNELS + (chan % JOB_TAG_CHANNELS))
    }

    /// The ledger bucket this tag's traffic is accounted under.
    #[inline]
    pub fn phase(self) -> TrafficPhase {
        match self {
            Tag::User(_) => TrafficPhase::Other,
            Tag::Panel(_) => TrafficPhase::Panel,
            Tag::Trailing(_) => TrafficPhase::TrailingUpdate,
            Tag::Checksum(_) => TrafficPhase::ChecksumUpdate,
            Tag::Checkpoint(_) => TrafficPhase::Checkpoint,
            Tag::Recovery(_) => TrafficPhase::Recovery,
            Tag::Job(_) => TrafficPhase::Other,
        }
    }

    /// The same subsystem, channel number shifted by `k` — the typed
    /// replacement for the old `base_tag + i` arithmetic at call sites
    /// that need a small family of channels (one per checksum copy, one
    /// per ring distance, …).
    #[must_use]
    pub fn offset(self, k: u16) -> Tag {
        match self {
            Tag::User(t) => Tag::User(t.checked_add(k as u32).expect("tag offset overflow")),
            Tag::Panel(t) => Tag::Panel(t.checked_add(k).expect("tag offset overflow")),
            Tag::Trailing(t) => Tag::Trailing(t.checked_add(k).expect("tag offset overflow")),
            Tag::Checksum(t) => Tag::Checksum(t.checked_add(k).expect("tag offset overflow")),
            Tag::Checkpoint(t) => Tag::Checkpoint(t.checked_add(k).expect("tag offset overflow")),
            Tag::Recovery(t) => Tag::Recovery(t.checked_add(k).expect("tag offset overflow")),
            Tag::Job(t) => {
                let chan = t.checked_add(k).expect("tag offset overflow");
                // Offsetting must stay inside the owning job's lane, or two
                // jobs' channels would alias after all.
                debug_assert_eq!(chan / JOB_TAG_CHANNELS, t / JOB_TAG_CHANNELS, "job tag offset crosses into another job's lane");
                Tag::Job(chan)
            }
        }
    }

    /// Wire encoding: `discriminant · 2³⁴ | channel · 2² | leg`. Injective,
    /// so distinct `(Tag, Leg)` pairs never share a mailbox key.
    #[inline]
    pub(crate) fn wire(self, leg: Leg) -> u64 {
        let (disc, chan) = match self {
            Tag::User(t) => (0u64, t as u64),
            Tag::Panel(t) => (1, t as u64),
            Tag::Trailing(t) => (2, t as u64),
            Tag::Checksum(t) => (3, t as u64),
            Tag::Checkpoint(t) => (4, t as u64),
            Tag::Recovery(t) => (5, t as u64),
            Tag::Job(t) => (6, t as u64),
        };
        let key = (disc << 34) | (chan << 2) | leg as u64;
        debug_assert!(
            key < crate::comm::DIST_CTRL_MIN,
            "tag wire key {key:#x} reaches the runtime's reserved control channels"
        );
        key
    }

    /// Inverse of [`Tag::wire`]: recover the tag and a human-readable leg
    /// name from a wire key, for diagnostics (timeout messages must name
    /// the protocol and collective leg, not a raw hex key). Returns `None`
    /// for keys outside the encoding (e.g. the runtime's control channel).
    pub(crate) fn decode_wire(wire: u64) -> Option<(Tag, &'static str)> {
        let leg = match wire & 0b11 {
            0 => "p2p",
            1 => "reduce",
            2 => "bcast",
            _ => return None,
        };
        let chan = (wire >> 2) & 0xFFFF_FFFF;
        let tag = match wire >> 34 {
            0 => Tag::User(chan as u32),
            1 => Tag::Panel(u16::try_from(chan).ok()?),
            2 => Tag::Trailing(u16::try_from(chan).ok()?),
            3 => Tag::Checksum(u16::try_from(chan).ok()?),
            4 => Tag::Checkpoint(u16::try_from(chan).ok()?),
            5 => Tag::Recovery(u16::try_from(chan).ok()?),
            6 => Tag::Job(u16::try_from(chan).ok()?),
            _ => return None,
        };
        Some((tag, leg))
    }
}

impl From<u32> for Tag {
    fn from(t: u32) -> Tag {
        Tag::User(t)
    }
}

impl From<u64> for Tag {
    fn from(t: u64) -> Tag {
        Tag::User(u32::try_from(t).expect("numeric tag exceeds u32"))
    }
}

impl From<i32> for Tag {
    fn from(t: i32) -> Tag {
        Tag::User(u32::try_from(t).expect("numeric tag must be non-negative"))
    }
}

impl From<usize> for Tag {
    fn from(t: usize) -> Tag {
        Tag::User(u32::try_from(t).expect("numeric tag exceeds u32"))
    }
}

/// Traffic totals for one [`TrafficPhase`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTraffic {
    /// Payload bytes sent (8 bytes per `f64`).
    pub bytes: u64,
    /// Messages sent.
    pub msgs: u64,
}

/// Per-phase traffic ledger: bytes and messages sent by one process,
/// bucketed by [`TrafficPhase`]. Snapshot it with
/// [`crate::Ctx::traffic`]; aggregate across ranks with [`TrafficLedger::merge`]
/// or the distributed helper `ft_pblas::verify::pd_gather_traffic`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficLedger {
    phases: [PhaseTraffic; TrafficPhase::COUNT],
}

impl TrafficLedger {
    /// Totals for one phase.
    #[inline]
    pub fn phase(&self, p: TrafficPhase) -> PhaseTraffic {
        self.phases[p.index()]
    }

    /// Sum of bytes over all phases.
    pub fn total_bytes(&self) -> u64 {
        self.phases.iter().map(|p| p.bytes).sum()
    }

    /// Sum of messages over all phases.
    pub fn total_msgs(&self) -> u64 {
        self.phases.iter().map(|p| p.msgs).sum()
    }

    /// Record one sent message of `bytes` payload bytes under `phase`.
    pub(crate) fn record(&mut self, phase: TrafficPhase, bytes: u64) {
        let p = &mut self.phases[phase.index()];
        p.bytes += bytes;
        p.msgs += 1;
    }

    /// Element-wise accumulate another ledger (cross-rank aggregation).
    pub fn merge(&mut self, other: &TrafficLedger) {
        for (a, b) in self.phases.iter_mut().zip(&other.phases) {
            a.bytes += b.bytes;
            a.msgs += b.msgs;
        }
    }

    /// Flatten to `[bytes₀, msgs₀, bytes₁, msgs₁, …]` as `f64` (exact below
    /// 2⁵³) for transport through an all-reduce.
    pub fn to_f64_row(&self) -> Vec<f64> {
        let mut v = Vec::with_capacity(2 * TrafficPhase::COUNT);
        for p in &self.phases {
            v.push(p.bytes as f64);
            v.push(p.msgs as f64);
        }
        v
    }

    /// Inverse of [`TrafficLedger::to_f64_row`].
    pub fn from_f64_row(row: &[f64]) -> TrafficLedger {
        assert_eq!(row.len(), 2 * TrafficPhase::COUNT, "malformed ledger row");
        let mut l = TrafficLedger::default();
        for (i, p) in l.phases.iter_mut().enumerate() {
            p.bytes = row[2 * i] as u64;
            p.msgs = row[2 * i + 1] as u64;
        }
        l
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_keys_are_disjoint_across_variants_and_legs() {
        let tags = [
            Tag::User(7),
            Tag::Panel(7),
            Tag::Trailing(7),
            Tag::Checksum(7),
            Tag::Checkpoint(7),
            Tag::Recovery(7),
            Tag::Job(7),
        ];
        let mut seen = std::collections::HashSet::new();
        for t in tags {
            for leg in [Leg::P2p, Leg::Reduce, Leg::Bcast] {
                assert!(seen.insert(t.wire(leg)), "wire collision for {t:?}/{leg:?}");
            }
        }
    }

    #[test]
    fn wire_decode_round_trips() {
        let tags = [
            Tag::User(0xDEAD_BEEF),
            Tag::Panel(0x101),
            Tag::Trailing(3),
            Tag::Checksum(0x210),
            Tag::Checkpoint(0x300),
            Tag::Recovery(0x1000),
            Tag::Job(0x2222),
        ];
        for t in tags {
            for (leg, name) in [(Leg::P2p, "p2p"), (Leg::Reduce, "reduce"), (Leg::Bcast, "bcast")] {
                assert_eq!(Tag::decode_wire(t.wire(leg)), Some((t, name)));
            }
        }
        // Keys outside the encoding (e.g. the control channel) don't decode.
        assert_eq!(Tag::decode_wire(u64::MAX), None);
        assert_eq!(Tag::decode_wire(0b11), None);
    }

    #[test]
    fn max_tag_wire_stays_below_the_control_channels() {
        // The distributed runtime reserves [DIST_CTRL_MIN, u64::MAX] for
        // its control wires (heartbeats ride frame kinds, but barrier/
        // agreement frames ride reserved wire keys). The largest key the
        // tag encoding can produce must stay strictly below them, so no
        // user message can ever masquerade as control traffic.
        let max_wire = [
            Tag::User(u32::MAX),
            Tag::Panel(u16::MAX),
            Tag::Trailing(u16::MAX),
            Tag::Checksum(u16::MAX),
            Tag::Checkpoint(u16::MAX),
            Tag::Recovery(u16::MAX),
            Tag::Job(u16::MAX),
        ]
        .into_iter()
        .map(|t| t.wire(Leg::Bcast))
        .max()
        .unwrap();
        assert!(max_wire < crate::comm::DIST_CTRL_MIN, "tag wire space reaches the control channels");
    }

    #[test]
    fn offset_stays_in_subsystem() {
        let t = Tag::Checkpoint(0x10).offset(3);
        assert_eq!(t, Tag::Checkpoint(0x13));
        assert_eq!(t.phase(), TrafficPhase::Checkpoint);
        assert_eq!(Tag::from(600u64), Tag::User(600));
    }

    #[test]
    fn job_tags_are_disjoint_across_jobs_and_channels() {
        // Every (job lane, channel) pair maps to its own wire key: a full
        // sweep of two adjacent lanes and the edges of the lane space.
        let mut seen = std::collections::HashSet::new();
        for job in [0u64, 1, 2, JOB_TAG_LANES as u64 - 1] {
            for chan in 0..JOB_TAG_CHANNELS {
                assert!(seen.insert(Tag::job(job, chan).wire(Leg::P2p)), "job tag collision for job {job} chan {chan}");
            }
        }
        // Lanes wrap modulo JOB_TAG_LANES: far-apart ids may share a lane
        // (documented), but equal ids always agree on the tag.
        assert_eq!(Tag::job(7, 3), Tag::job(7 + JOB_TAG_LANES as u64, 3));
        // Offsets stay inside the job's channel budget.
        assert_eq!(Tag::job(5, 1).offset(2), Tag::job(5, 3));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "job tag channel")]
    fn job_tag_rejects_out_of_range_channel() {
        let _ = Tag::job(0, JOB_TAG_CHANNELS);
    }

    #[test]
    fn ledger_round_trips_and_merges() {
        let mut a = TrafficLedger::default();
        a.record(TrafficPhase::Panel, 80);
        a.record(TrafficPhase::Recovery, 24);
        a.record(TrafficPhase::Recovery, 16);
        assert_eq!(a.phase(TrafficPhase::Panel), PhaseTraffic { bytes: 80, msgs: 1 });
        assert_eq!(a.phase(TrafficPhase::Recovery), PhaseTraffic { bytes: 40, msgs: 2 });
        assert_eq!(a.total_bytes(), 120);
        assert_eq!(a.total_msgs(), 3);

        let b = TrafficLedger::from_f64_row(&a.to_f64_row());
        assert_eq!(a, b);

        let mut c = a;
        c.merge(&b);
        assert_eq!(c.total_bytes(), 240);
        assert_eq!(c.total_msgs(), 6);
    }
}
