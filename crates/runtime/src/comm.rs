//! Per-process communication context: tagged point-to-point messages over
//! a pluggable [`Transport`], revocable barriers, fail-point checks, chaos
//! injection and the per-phase traffic ledger. The tree collectives live in
//! [`crate::collectives`]; failure detection and agreement in
//! [`crate::detect`].

use crate::detect::{self, Detector, FailureAgreement, InterruptReason};
use crate::fault::{ChaosScript, FaultScript, SdcFlip, SdcScript};
use crate::grid::Grid;
use crate::tag::{Leg, Tag, TrafficLedger, TrafficPhase};
use crate::transport::{CommError, MpscTransport, Msg, Transport};
use std::cell::{Cell, RefCell};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;
use std::time::Duration;

/// Receive timeout — a deadlock in the SPMD protocol aborts loudly instead
/// of hanging the test suite. 120 s by default: generous for a peer that is
/// compute-bound between frames, yet well inside the distributed launcher's
/// 600 s watchdog so the typed panic (with its known-dead diagnosis) is what
/// reaches the user, not a SIGKILL. `FT_RECV_TIMEOUT_MS` overrides it so
/// integration tests can assert that a wedged protocol fails *typed and
/// bounded* instead of hanging.
pub(crate) fn recv_timeout() -> Duration {
    use std::sync::OnceLock;
    static MS: OnceLock<u64> = OnceLock::new();
    Duration::from_millis(*MS.get_or_init(|| {
        std::env::var("FT_RECV_TIMEOUT_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(120_000)
    }))
}

/// Receive poll granularity: how often a blocked receive re-checks the
/// revocation flag and peer liveness while waiting. Control messages from
/// dying peers wake receivers immediately; the poll is the safety net.
const RECV_POLL: Duration = Duration::from_millis(50);

/// Wire key of the runtime's control channel (death notices). Outside the
/// [`Tag`] encoding, so it can never collide with algorithm traffic.
pub(crate) const CTRL_WIRE: u64 = u64::MAX;

/// Distributed agreement frames (see [`crate::dist`]).
pub(crate) const AGREE_WIRE: u64 = u64::MAX - 1;

/// Distributed barrier arrival frames (see [`crate::dist`]).
pub(crate) const BARRIER_WIRE: u64 = u64::MAX - 2;

/// Lower edge of the distributed-control wire band. Frames at or above
/// this key carry their own epoch/generation in the payload and bypass the
/// normal epoch filter (an agreement frame *is* how epochs advance, so it
/// cannot be fenced by them). Far outside the [`Tag`] encoding.
pub(crate) const DIST_CTRL_MIN: u64 = u64::MAX - 15;

/// Everything shared by the whole world, built once per [`crate::run_spmd`].
pub(crate) struct World {
    grid: Grid,
    transports: Vec<Box<dyn Transport>>,
    detector: Arc<Detector>,
    script: Arc<FaultScript>,
    chaos: Arc<ChaosScript>,
    sdc: Arc<SdcScript>,
}

impl World {
    /// A world over the default in-process mpsc fabric.
    pub(crate) fn new(grid: Grid, script: Arc<FaultScript>, chaos: Arc<ChaosScript>, sdc: Arc<SdcScript>) -> Self {
        let transports = MpscTransport::fabric(grid.size())
            .into_iter()
            .map(|t| Box::new(t) as Box<dyn Transport>)
            .collect();
        Self::with_transports(grid, script, chaos, sdc, transports)
    }

    /// A world over caller-supplied endpoints, in rank order.
    pub(crate) fn with_transports(
        grid: Grid,
        script: Arc<FaultScript>,
        chaos: Arc<ChaosScript>,
        sdc: Arc<SdcScript>,
        transports: Vec<Box<dyn Transport>>,
    ) -> Self {
        assert_eq!(transports.len(), grid.size(), "one transport endpoint per rank");
        Self {
            grid,
            transports,
            detector: Arc::new(Detector::default()),
            script,
            chaos,
            sdc,
        }
    }

    /// Build the single [`Ctx`] of one *process* in a multi-process world:
    /// the transport is the process's only tie to its peers, so the
    /// detector is process-local and barriers/agreement run as message
    /// protocols (see [`crate::dist`]) instead of shared-memory rendezvous.
    pub(crate) fn distributed_ctx(grid: Grid, chaos: Arc<ChaosScript>, transport: Box<dyn Transport>) -> Ctx {
        assert_eq!(transport.world_size(), grid.size(), "transport world != grid size");
        let rank = transport.rank();
        let mut ctx = Ctx::build(
            rank,
            grid,
            transport,
            Arc::new(Detector::default()),
            Arc::new(FaultScript::none()),
            chaos,
            Arc::new(SdcScript::none()),
        );
        ctx.dist = true;
        ctx
    }

    pub(crate) fn into_ctxs(self) -> Vec<Ctx> {
        let World { grid, transports, detector, script, chaos, sdc } = self;
        transports
            .into_iter()
            .enumerate()
            .map(|(rank, transport)| {
                Ctx::build(
                    rank,
                    grid,
                    transport,
                    Arc::clone(&detector),
                    Arc::clone(&script),
                    Arc::clone(&chaos),
                    Arc::clone(&sdc),
                )
            })
            .collect()
    }
}

/// Result of a fail-point check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailCheck {
    /// Nothing failed; continue.
    AllGood,
    /// One or more processes failed at this point. Every process observes
    /// the same victim list. `me` is `true` on the victims themselves, which
    /// must now drop their local data and act as replacement processes.
    Failure {
        /// Ranks that failed, in announcement order.
        victims: Vec<usize>,
        /// Whether the observing process is itself a victim.
        me: bool,
    },
}

/// A process's handle to the simulated machine. Not `Sync`: it lives on its
/// process's thread.
pub struct Ctx {
    rank: usize,
    grid: Grid,
    pub(crate) transport: Box<dyn Transport>,
    /// Out-of-order stash for selective receive by `(src, wire)`; each
    /// entry keeps the envelope epoch so an agreement can flush exactly
    /// the aborted epoch's data frames and no newer ones.
    #[allow(clippy::type_complexity)] // (src, wire) → FIFO of payloads; a type alias would obscure it
    pub(crate) stash: RefCell<HashMap<(usize, u64), VecDeque<(u64, Arc<[f64]>)>>>,
    pub(crate) detector: Arc<Detector>,
    script: Arc<FaultScript>,
    chaos: Arc<ChaosScript>,
    sdc: Arc<SdcScript>,
    /// SDC flip indices that already fired on this rank — a rollback that
    /// re-executes ops must not re-corrupt.
    sdc_fired: RefCell<HashSet<usize>>,
    /// Flips whose op has passed but which the algorithm has not yet
    /// applied; drained by [`Ctx::take_sdc_flips`] at phase boundaries.
    sdc_pending: RefCell<Vec<SdcFlip>>,
    board_cursor: Cell<usize>,
    /// Script entries this process has already executed — a fail point is
    /// fail-stop, so re-visiting the same point id (e.g. after a
    /// checkpoint/restart rollback re-runs an iteration) must not re-kill.
    fired_points: RefCell<HashSet<u64>>,
    /// Communication epoch: bumped by each failure agreement; messages
    /// stamped with an older epoch are stragglers from an aborted attempt.
    pub(crate) epoch: Cell<u64>,
    /// Multi-process world: this `Ctx` is alone in its process, peers are
    /// reachable only through the transport. Barriers and agreement run as
    /// message protocols ([`crate::dist`]), peer deaths are detected from
    /// the wire (heartbeat silence / EOF) and swept into the detector.
    pub(crate) dist: bool,
    /// Distributed-barrier generation within the current epoch.
    pub(crate) bar_gen: Cell<u64>,
    /// Peers already swept into the detector as dead (reset when a
    /// replacement comes back alive, so a re-death is re-reported).
    pub(crate) swept: RefCell<Vec<bool>>,
    /// Highest peer incarnation already folded into the detector. A bump
    /// above this is positive death evidence even when the replacement
    /// reconnected faster than the silence threshold: the handshake saying
    /// "incarnation k+1" proves incarnation k is gone.
    pub(crate) seen_inc: RefCell<Vec<u32>>,
    /// Chaos injection armed (the algorithm's protection domain is active).
    chaos_armed: Cell<bool>,
    /// Message operations performed since arming (chaos clock).
    ops: Cell<u64>,
    /// Chaos-kill indices that already fired on this rank.
    chaos_fired: RefCell<HashSet<usize>>,
    /// Inside a recovery round (for `ChaosPoint::RecoveryOp` targeting).
    in_recovery: Cell<bool>,
    recovery_round: Cell<u32>,
    recovery_ops: Cell<u64>,
    bytes_sent: Cell<u64>,
    msgs_sent: Cell<u64>,
    ledger: RefCell<TrafficLedger>,
    /// Elastic-shrink hook: when the launcher will not re-spawn a dead
    /// rank, the lowest-ranked survivor invokes this with `(victim,
    /// next_incarnation)` to adopt the victim's rank into its own process
    /// (see [`crate::dist`]'s agreement loop). `None` = shrink disabled.
    #[allow(clippy::type_complexity)] // a handler alias would obscure the (victim, incarnation) contract
    shrink_handler: RefCell<Option<Box<dyn Fn(usize, u32) + Send>>>,
    /// Victims this rank has adopted (world-length, idempotence guard).
    shrink_adopted: RefCell<Vec<bool>>,
    /// Seconds the agreement loop spent waiting out adoptions I triggered.
    shrink_stall: Cell<f64>,
}

impl Ctx {
    #[allow(clippy::too_many_arguments)] // private assembly point for the two world shapes
    fn build(
        rank: usize,
        grid: Grid,
        transport: Box<dyn Transport>,
        detector: Arc<Detector>,
        script: Arc<FaultScript>,
        chaos: Arc<ChaosScript>,
        sdc: Arc<SdcScript>,
    ) -> Ctx {
        let world = grid.size();
        Ctx {
            rank,
            grid,
            transport,
            stash: RefCell::new(HashMap::new()),
            detector,
            script,
            chaos,
            sdc,
            sdc_fired: RefCell::new(HashSet::new()),
            sdc_pending: RefCell::new(Vec::new()),
            board_cursor: Cell::new(0),
            fired_points: RefCell::new(HashSet::new()),
            epoch: Cell::new(0),
            dist: false,
            bar_gen: Cell::new(0),
            swept: RefCell::new(vec![false; world]),
            seen_inc: RefCell::new(vec![0; world]),
            chaos_armed: Cell::new(false),
            ops: Cell::new(0),
            chaos_fired: RefCell::new(HashSet::new()),
            in_recovery: Cell::new(false),
            recovery_round: Cell::new(0),
            recovery_ops: Cell::new(0),
            bytes_sent: Cell::new(0),
            msgs_sent: Cell::new(0),
            ledger: RefCell::new(TrafficLedger::default()),
            shrink_handler: RefCell::new(None),
            shrink_adopted: RefCell::new(vec![false; world]),
            shrink_stall: Cell::new(0.0),
        }
    }

    /// This process's rank in `0..P·Q`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Whether this `Ctx` runs in a multi-process (distributed) world.
    #[inline]
    pub fn distributed(&self) -> bool {
        self.dist
    }

    /// Snapshot of the transport's per-peer wire counters (all-zero for
    /// the in-process fabric).
    pub fn transport_stats(&self) -> crate::transport::TransportStats {
        self.transport.stats()
    }

    /// Arm elastic-shrink mode: when a peer is agreed dead and no
    /// replacement arrives, the adopter (lowest-ranked survivor by this
    /// rank's view) invokes `handler` with the victim's rank and the
    /// incarnation its successor must announce. The handler must start the
    /// successor *concurrently* (e.g. a thread hosting a fresh transport
    /// bound to the victim's freed port) and return promptly — the
    /// agreement loop keeps pumping while the adopted rank comes up.
    pub fn set_shrink_handler(&self, handler: impl Fn(usize, u32) + Send + 'static) {
        *self.shrink_handler.borrow_mut() = Some(Box::new(handler));
    }

    /// Shrink bookkeeping: world-length "I adopted this rank" flags plus
    /// the seconds of agreement stall attributed to adoptions this rank
    /// triggered. All zeros/false when shrink never fired.
    pub fn shrink_stats(&self) -> (Vec<bool>, f64) {
        (self.shrink_adopted.borrow().clone(), self.shrink_stall.get())
    }

    /// Invoke the shrink handler for every agreed-dead rank not yet
    /// adopted, if this rank is the adopter. Each rank applies the same
    /// rule to its own failure view — lowest-ranked survivor wins — so at
    /// most one survivor starts each adoption (transient view divergence
    /// is bounded by the agreement this is called from). Returns whether a
    /// new adoption was started.
    pub(crate) fn try_shrink_adoptions(&self, dead: &[usize]) -> bool {
        if dead.is_empty() || self.shrink_handler.borrow().is_none() {
            return false;
        }
        if (0..self.grid.size()).find(|r| !dead.contains(r)) != Some(self.rank) {
            return false;
        }
        let mut started = false;
        for &v in dead {
            if std::mem::replace(&mut self.shrink_adopted.borrow_mut()[v], true) {
                continue;
            }
            let inc = self.transport.peer_incarnation(v) + 1;
            if let Some(h) = self.shrink_handler.borrow().as_ref() {
                h(v, inc);
            }
            started = true;
        }
        started
    }

    /// Attribute `secs` of agreement stall to this rank's adoptions.
    pub(crate) fn add_shrink_stall(&self, secs: f64) {
        self.shrink_stall.set(self.shrink_stall.get() + secs);
    }

    /// Pre-seed the fired set of the chaos injector — a respawned
    /// replacement process is told which kills already struck so they do
    /// not re-fire on its fresh op clock.
    pub fn mark_chaos_fired(&self, indices: &[usize]) {
        let mut fired = self.chaos_fired.borrow_mut();
        for &i in indices {
            fired.insert(i);
        }
    }

    /// The grid geometry.
    #[inline]
    pub fn grid(&self) -> Grid {
        self.grid
    }

    /// This process's grid row.
    #[inline]
    pub fn myrow(&self) -> usize {
        self.grid.coords_of(self.rank).0
    }

    /// This process's grid column.
    #[inline]
    pub fn mycol(&self) -> usize {
        self.grid.coords_of(self.rank).1
    }

    /// Process rows `P`.
    #[inline]
    pub fn nprow(&self) -> usize {
        self.grid.nprow()
    }

    /// Process columns `Q`.
    #[inline]
    pub fn npcol(&self) -> usize {
        self.grid.npcol()
    }

    /// Bytes sent by this process so far (communication-volume accounting
    /// for the Section 6 model validation).
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent.get()
    }

    /// Messages sent by this process so far.
    pub fn msgs_sent(&self) -> u64 {
        self.msgs_sent.get()
    }

    /// Snapshot of the per-phase traffic ledger. Its phase totals sum to
    /// exactly [`Ctx::bytes_sent`] / [`Ctx::msgs_sent`].
    pub fn traffic(&self) -> TrafficLedger {
        *self.ledger.borrow()
    }

    // --- point to point ----------------------------------------------------

    /// Send `data` to `dst` under `tag`.
    pub fn send(&self, dst: usize, tag: impl Into<Tag>, data: &[f64]) {
        self.send_arc(dst, tag, Arc::from(data));
    }

    /// Send an already-shared payload to `dst` under `tag` without copying
    /// it — re-sending a retained `Arc<[f64]>` (e.g. a snapshot backup) is
    /// free at this layer.
    pub fn send_arc(&self, dst: usize, tag: impl Into<Tag>, payload: Arc<[f64]>) {
        let tag = tag.into();
        self.send_wire(dst, tag.wire(Leg::P2p), tag.phase(), payload);
    }

    /// Blocking selective receive of the next message from `src` with `tag`.
    /// FIFO order is preserved per `(src, tag)` pair.
    pub fn recv(&self, src: usize, tag: impl Into<Tag>) -> Vec<f64> {
        self.recv_arc(src, tag).to_vec()
    }

    /// [`Ctx::recv`] without the final copy: the payload stays shared with
    /// the sender (and any broadcast siblings).
    pub fn recv_arc(&self, src: usize, tag: impl Into<Tag>) -> Arc<[f64]> {
        let tag = tag.into();
        self.recv_wire(src, tag.wire(Leg::P2p))
    }

    /// Non-panicking selective receive: like [`Ctx::recv`] but surfaces
    /// communication failures as typed [`CommError`]s — [`CommError::Timeout`]
    /// when nothing arrives within `timeout`, [`CommError::PeerDead`] when
    /// the awaited peer's endpoint is closed, [`CommError::Revoked`] when a
    /// failure notification has revoked the current epoch.
    pub fn try_recv(&self, src: usize, tag: impl Into<Tag>, timeout: Duration) -> Result<Vec<f64>, CommError> {
        let tag = tag.into();
        self.chaos_tick();
        self.recv_wire_impl(src, tag.wire(Leg::P2p), timeout).map(|p| p.to_vec())
    }

    pub(crate) fn send_wire(&self, dst: usize, wire: u64, phase: TrafficPhase, payload: Arc<[f64]>) {
        assert!(dst < self.grid.size(), "send: bad destination {dst}");
        self.chaos_tick();
        self.bytes_sent.set(self.bytes_sent.get() + 8 * payload.len() as u64);
        self.msgs_sent.set(self.msgs_sent.get() + 1);
        self.ledger.borrow_mut().record(phase, 8 * payload.len() as u64);
        self.transport
            .send(dst, Msg { src: self.rank, wire, epoch: self.epoch.get(), payload });
    }

    pub(crate) fn recv_wire(&self, src: usize, wire: u64) -> Arc<[f64]> {
        self.chaos_tick();
        match self.recv_wire_impl(src, wire, recv_timeout()) {
            Ok(p) => p,
            // A dead peer without agreement yet is the same condition as a
            // revocation: abort to the next agreement point.
            Err(CommError::Revoked) | Err(CommError::PeerDead { .. }) => {
                detect::raise_interrupt(InterruptReason::Revoked, self.rank)
            }
            Err(err) => self.recv_failure(src, wire, err),
        }
    }

    fn recv_wire_impl(&self, src: usize, wire: u64, timeout: Duration) -> Result<Arc<[f64]>, CommError> {
        if let Some(q) = self.stash.borrow_mut().get_mut(&(src, wire)) {
            if let Some((_, d)) = q.pop_front() {
                return Ok(d);
            }
        }
        // In a distributed world failures come from the wire, not from a
        // script — the failure paths are always armed there.
        let failures_on = !self.chaos.is_empty() || self.dist;
        let mut waited = Duration::ZERO;
        loop {
            // Liveness is judged only when the inbox runs dry (the Timeout
            // arm): a frame that already made it across the wire must beat
            // a concurrently-observed death, or a rank that finished and
            // closed its sockets reads as failed to a slow receiver that
            // still holds the rank's final frame unread.
            let slice = RECV_POLL.min(timeout.saturating_sub(waited));
            match self.transport.recv(slice) {
                Ok(msg) => {
                    if msg.wire == CTRL_WIRE {
                        continue; // death notice: the loop re-checks the flags
                    }
                    if msg.wire >= DIST_CTRL_MIN {
                        // Distributed control frames fence themselves (the
                        // epoch/generation rides in the payload); stash for
                        // the protocol in `crate::dist` to consume.
                        let agree_frame = msg.wire == AGREE_WIRE;
                        self.stash
                            .borrow_mut()
                            .entry((msg.src, msg.wire))
                            .or_default()
                            .push_back((msg.epoch, msg.payload));
                        // An agreement frame doubles as a revocation
                        // notice: its sender is already in the failure
                        // handler, and a steady gossip stream would starve
                        // the dry-inbox arm below, so the liveness fold
                        // and the revocation check cannot wait for a
                        // quiet inbox.
                        if agree_frame {
                            self.sweep_dead_peers();
                            if self.detector.is_revoked() {
                                return Err(CommError::Revoked);
                            }
                        }
                        continue;
                    }
                    if msg.epoch < self.epoch.get() {
                        continue; // straggler from an aborted (revoked) epoch
                    }
                    if msg.src == src && msg.wire == wire {
                        return Ok(msg.payload);
                    }
                    self.stash
                        .borrow_mut()
                        .entry((msg.src, msg.wire))
                        .or_default()
                        .push_back((msg.epoch, msg.payload));
                }
                Err(CommError::Timeout) => {
                    // Inbox drained: a closed peer endpoint is now a real
                    // failure, not just in-flight data racing the death.
                    if self.dist {
                        self.sweep_dead_peers();
                    }
                    if failures_on && self.detector.is_revoked() {
                        return Err(CommError::Revoked);
                    }
                    if failures_on && self.transport.is_peer_dead(src) {
                        return Err(CommError::PeerDead { peer: src });
                    }
                    waited += slice;
                    if waited >= timeout {
                        return Err(CommError::Timeout);
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Fold transport-level death evidence (heartbeat silence, connection
    /// EOF) into the local detector — the distributed replacement for a
    /// dying peer's shared-memory `revoke`. Idempotent per death; a peer
    /// that comes back (replacement reconnected) re-arms its slot so a
    /// second death is reported again.
    pub(crate) fn sweep_dead_peers(&self) {
        let mut swept = self.swept.borrow_mut();
        let mut seen_inc = self.seen_inc.borrow_mut();
        for r in 0..self.grid.size() {
            if r == self.rank {
                continue;
            }
            // A reconnect handshake reporting a higher incarnation proves
            // the previous incarnation died, even if the replacement came
            // back up inside the silence threshold (a fast launcher
            // respawns the victim in milliseconds — the slot never looks
            // dead, but a death happened all the same).
            let inc = self.transport.peer_incarnation(r);
            if inc > seen_inc[r] {
                seen_inc[r] = inc;
                self.detector.revoke(r);
                continue; // the slot is alive again: skip the silence check
            }
            if self.transport.is_peer_dead(r) {
                if !swept[r] {
                    swept[r] = true;
                    self.detector.revoke(r);
                }
            } else {
                swept[r] = false;
            }
        }
    }

    /// Terminal receive failure: decode the wire key back into its `Tag`
    /// and collective leg, and name every peer currently known dead, so a
    /// protocol deadlock is debuggable from the message alone.
    fn recv_failure(&self, src: usize, wire: u64, err: CommError) -> ! {
        let what = match Tag::decode_wire(wire) {
            Some((tag, leg)) => format!("{tag:?}/{leg} [wire {wire:#x}]"),
            None => format!("wire {wire:#x}"),
        };
        panic!(
            "rank {}: recv(src={src}, tag={what}) failed: {err} after {:?} — SPMD protocol deadlock; known dead/failed ranks: {:?}",
            self.rank,
            recv_timeout(),
            self.known_dead()
        )
    }

    /// Ranks currently known to have failed: the detector's uncommitted
    /// victim round plus any closed transport endpoints. Sorted.
    pub fn known_dead(&self) -> Vec<usize> {
        let mut d = self.detector.current_victims();
        for r in 0..self.grid.size() {
            if self.transport.is_peer_dead(r) && !d.contains(&r) {
                d.push(r);
            }
        }
        d.sort_unstable();
        d
    }

    // --- barriers -----------------------------------------------------------

    /// World barrier. Revocable: if a failure notification arrives while
    /// waiting, the barrier aborts (all-or-none per generation) and the
    /// call unwinds to the enclosing failure handler.
    pub fn barrier(&self) {
        if self.dist {
            if self.dist_barrier().is_err() {
                detect::raise_interrupt(InterruptReason::Revoked, self.rank);
            }
            return;
        }
        if self.detector.barrier(self.grid.size()).is_err() {
            detect::raise_interrupt(InterruptReason::Revoked, self.rank);
        }
    }

    /// Ranks of this process's grid row, in column order.
    pub fn row_ranks(&self) -> Vec<usize> {
        let p = self.myrow();
        (0..self.grid.npcol()).map(|q| self.grid.rank_of(p, q)).collect()
    }

    /// Ranks of this process's grid column, in row order.
    pub fn col_ranks(&self) -> Vec<usize> {
        let q = self.mycol();
        (0..self.grid.nprow()).map(|p| self.grid.rank_of(p, q)).collect()
    }

    // --- fault handling ----------------------------------------------------

    /// Fail-point check: must be called **collectively** (same sequence of
    /// points on all ranks) at quiescent phase boundaries.
    ///
    /// If the fault script kills this process here, it announces itself on
    /// the detector's notice board; the two enclosing barriers make the
    /// board read race-free, so every rank returns the same [`FailCheck`]
    /// for the same point. When no script entry has ever fired the check is
    /// two barriers plus one atomic load — no lock is taken.
    pub fn check_failpoint(&self, point: u64) -> FailCheck {
        if !self.script.is_empty() && self.script.is_victim_at(point, self.rank) && self.fired_points.borrow_mut().insert(point) {
            self.detector.announce(self.rank);
        }
        self.barrier();
        let cursor = self.board_cursor.get();
        let new = if self.detector.board_len() == cursor {
            Vec::new()
        } else {
            self.detector.board_from(cursor)
        };
        self.barrier();
        // Commit the cursor only after the second barrier: if that barrier
        // is revoked, the unwind leaves the cursor untouched and the
        // re-executed fail point re-reads the same entries (the read is
        // transactional, so aborted attempts can't desynchronize ranks).
        self.board_cursor.set(cursor + new.len());
        if new.is_empty() {
            FailCheck::AllGood
        } else {
            // Board order is announcement order — a thread-timing artifact.
            // Sort so every consumer (tolerance checks, error reports) sees
            // the same victim order on every run.
            let mut victims = new;
            victims.sort_unstable();
            let me = victims.contains(&self.rank);
            FailCheck::Failure { victims, me }
        }
    }

    /// Arm chaos injection: the algorithm's protection domain starts here
    /// (after initial encoding — data lost before protection exists is
    /// outside the paper's fault model). Resets the message-op clock.
    pub fn arm_chaos(&self) {
        self.chaos_armed.set(true);
        self.ops.set(0);
    }

    /// Whether chaos kills can strike this run (armed and non-empty script).
    pub fn chaos_enabled(&self) -> bool {
        self.chaos_armed.get() && !self.chaos.is_empty()
    }

    /// Message operations counted against the chaos clock since
    /// [`Ctx::arm_chaos`] — for calibrating [`ChaosScript`] op indices
    /// against a concrete problem size.
    pub fn chaos_ops(&self) -> u64 {
        self.ops.get()
    }

    /// Disarm chaos injection: the protection domain is closed. No kill can
    /// fire on this rank afterwards — the algorithm calls this behind a
    /// completed barrier so no rank leaves while a peer can still die.
    pub fn disarm_chaos(&self) {
        self.chaos_armed.set(false);
    }

    /// Enter a recovery round (collective). Chaos kills targeted at
    /// [`crate::fault::ChaosPoint::RecoveryOp`] count ops inside rounds
    /// opened by this call; rounds are numbered 1, 2, … across the run.
    pub fn begin_recovery(&self) {
        self.recovery_round.set(self.recovery_round.get() + 1);
        self.recovery_ops.set(0);
        self.in_recovery.set(true);
    }

    /// Leave the current recovery round.
    pub fn end_recovery(&self) {
        self.in_recovery.set(false);
    }

    /// Full-world failure agreement — the ULFM `MPI_Comm_agree` analogue.
    ///
    /// Called by every process (survivors and replacements alike) after a
    /// failure aborted the current attempt. Blocks until the whole world
    /// arrives, then everyone returns the **identical** sorted victim set
    /// accumulated since the last committed boundary, the communication
    /// epoch is bumped (stragglers from the aborted epoch will be dropped
    /// on receive), the local out-of-order stash is purged, and victims
    /// reopen their transport endpoints as replacement processes.
    pub fn agree_on_failures(&self) -> FailureAgreement {
        if self.dist {
            return self.dist_agree();
        }
        // The victim reopens *before* the rendezvous: agreement is a full
        // barrier, so by reopening first we guarantee no survivor can send
        // to a still-closed replacement endpoint afterwards (the message
        // would be silently dropped and the replacement would deadlock).
        // Reopening early is safe — anything delivered before the epoch
        // bump is discarded by the epoch check on receive.
        if self.transport.is_peer_dead(self.rank) {
            self.transport.reopen();
        }
        let res = self.detector.agree(self.grid.size());
        self.epoch.set(res.epoch);
        self.stash.borrow_mut().clear();
        res
    }

    /// Commit fail-point boundary `id`: recovery (if any) for the current
    /// failure round is complete and protection is re-armed. Clears the
    /// detector's victim round. Cheap when nothing failed.
    pub fn commit_boundary(&self, id: u64) {
        self.detector.commit(id);
    }

    /// Whether silent-corruption flips can strike this run (armed and
    /// non-empty SDC script). Shares the arm/disarm protection domain with
    /// chaos: both injectors model faults inside the protected computation.
    pub fn sdc_enabled(&self) -> bool {
        self.chaos_armed.get() && !self.sdc.is_empty()
    }

    /// Drain the queue of fired-but-unapplied silent bit flips. The
    /// algorithm calls this at phase boundaries and applies the flips to
    /// its own local storage (the runtime cannot see those buffers).
    pub fn take_sdc_flips(&self) -> Vec<SdcFlip> {
        std::mem::take(&mut *self.sdc_pending.borrow_mut())
    }

    /// Count one message operation against the injection clock, queue any
    /// silent bit flip scheduled here, and die if a chaos kill is.
    fn chaos_tick(&self) {
        if !self.chaos_armed.get() || (self.chaos.is_empty() && self.sdc.is_empty()) {
            return;
        }
        let op = self.ops.get();
        self.ops.set(op + 1);
        if !self.sdc.is_empty() {
            for idx in self.sdc.flip_indices(self.rank, op) {
                if self.sdc_fired.borrow_mut().insert(idx) {
                    self.sdc_pending.borrow_mut().push(self.sdc.flips()[idx]);
                }
            }
        }
        if self.chaos.is_empty() {
            return;
        }
        let rec = if self.in_recovery.get() {
            let r = self.recovery_ops.get();
            self.recovery_ops.set(r + 1);
            Some((self.recovery_round.get(), r))
        } else {
            None
        };
        if let Some(idx) = self.chaos.kill_index(self.rank, op, rec) {
            if self.chaos_fired.borrow_mut().insert(idx) {
                if self.dist {
                    self.dist_die(idx);
                } else {
                    self.die();
                }
            }
        }
    }

    /// Real process death for the distributed chaos mode: announce the
    /// strike on stdout so the parent launcher delivers an actual SIGKILL
    /// at this exact op boundary, then stall. If no parent is watching
    /// (standalone child), abort after a grace period — death must stay
    /// abrupt either way, so peers see sockets drop, not a clean shutdown.
    fn dist_die(&self, idx: usize) -> ! {
        use std::io::Write;
        println!("FT_CHAOS_KILL rank={} idx={idx}", self.rank);
        let _ = std::io::stdout().flush();
        std::thread::sleep(Duration::from_secs(5));
        std::process::abort();
    }

    /// Fail-stop death of this process: revoke the world, close the
    /// endpoint, wake peers blocked in receives, and unwind. The thread
    /// survives to play the replacement process after agreement.
    fn die(&self) -> ! {
        self.detector.revoke(self.rank);
        self.transport.close();
        let epoch = self.epoch.get();
        for dst in 0..self.grid.size() {
            if dst != self.rank {
                self.transport.send(
                    dst,
                    Msg {
                        src: self.rank,
                        wire: CTRL_WIRE,
                        epoch,
                        payload: Arc::from(&[] as &[f64]),
                    },
                );
            }
        }
        detect::raise_interrupt(InterruptReason::Died, self.rank)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_spmd;

    #[test]
    fn p2p_send_recv() {
        run_spmd(1, 2, FaultScript::none(), |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 7, &[1.0, 2.0, 3.0]);
            } else {
                let d = ctx.recv(0, 7);
                assert_eq!(d, vec![1.0, 2.0, 3.0]);
            }
        });
    }

    #[test]
    fn p2p_arc_payload_is_forwarded_without_copy() {
        run_spmd(1, 3, FaultScript::none(), |ctx| {
            // 0 sends to 1, which forwards the same Arc to 2.
            if ctx.rank() == 0 {
                ctx.send(1, 7, &[4.0; 16]);
            } else if ctx.rank() == 1 {
                let d = ctx.recv_arc(0, 7);
                ctx.send_arc(2, 8, d);
            } else {
                assert_eq!(ctx.recv(1, 8), vec![4.0; 16]);
            }
        });
    }

    #[test]
    fn selective_recv_out_of_order() {
        run_spmd(1, 2, FaultScript::none(), |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 1, &[1.0]);
                ctx.send(1, 2, &[2.0]);
                ctx.send(1, 1, &[3.0]);
            } else {
                // Receive tag 2 first even though tag 1 arrived earlier,
                // then tag 1 twice in FIFO order.
                assert_eq!(ctx.recv(0, 2), vec![2.0]);
                assert_eq!(ctx.recv(0, 1), vec![1.0]);
                assert_eq!(ctx.recv(0, 1), vec![3.0]);
            }
        });
    }

    #[test]
    fn try_recv_times_out_with_typed_error() {
        run_spmd(1, 2, FaultScript::none(), |ctx| {
            if ctx.rank() == 1 {
                let r = ctx.try_recv(0, 7, Duration::from_millis(30));
                assert_eq!(r, Err(CommError::Timeout));
            }
            ctx.barrier();
            if ctx.rank() == 0 {
                ctx.send(1, 7, &[5.0]);
            } else {
                assert_eq!(ctx.try_recv(0, 7, Duration::from_secs(5)), Ok(vec![5.0]));
            }
        });
    }

    #[test]
    fn typed_tags_do_not_collide_with_numeric_tags() {
        run_spmd(1, 2, FaultScript::none(), |ctx| {
            if ctx.rank() == 0 {
                // Same channel number, three different subsystems.
                ctx.send(1, Tag::Panel(5), &[1.0]);
                ctx.send(1, Tag::Recovery(5), &[2.0]);
                ctx.send(1, 5, &[3.0]);
            } else {
                assert_eq!(ctx.recv(0, 5), vec![3.0]);
                assert_eq!(ctx.recv(0, Tag::Panel(5)), vec![1.0]);
                assert_eq!(ctx.recv(0, Tag::Recovery(5)), vec![2.0]);
            }
        });
    }

    #[test]
    fn failpoint_no_failure() {
        run_spmd(2, 2, FaultScript::none(), |ctx| {
            assert_eq!(ctx.check_failpoint(1), FailCheck::AllGood);
            assert_eq!(ctx.check_failpoint(2), FailCheck::AllGood);
        });
    }

    #[test]
    fn failpoint_single_victim_observed_by_all() {
        let out = run_spmd(2, 2, FaultScript::one(2, 50), |ctx| {
            assert_eq!(ctx.check_failpoint(49), FailCheck::AllGood);
            let res = ctx.check_failpoint(50);
            match &res {
                FailCheck::Failure { victims, me } => {
                    assert_eq!(victims, &vec![2]);
                    assert_eq!(*me, ctx.rank() == 2);
                }
                _ => panic!("rank {} missed the failure", ctx.rank()),
            }
            // Life goes on after recovery.
            assert_eq!(ctx.check_failpoint(51), FailCheck::AllGood);
            1
        });
        assert_eq!(out, vec![1; 4]);
    }

    #[test]
    fn failpoint_two_simultaneous_victims() {
        use crate::PlannedFailure;
        let script = FaultScript::new(vec![PlannedFailure { victim: 0, point: 5 }, PlannedFailure { victim: 3, point: 5 }]);
        run_spmd(2, 2, script, |ctx| match ctx.check_failpoint(5) {
            FailCheck::Failure { mut victims, me } => {
                victims.sort_unstable();
                assert_eq!(victims, vec![0, 3]);
                assert_eq!(me, ctx.rank() == 0 || ctx.rank() == 3);
            }
            _ => panic!("missed failure"),
        });
    }

    #[test]
    fn traffic_counters() {
        let sent = run_spmd(1, 2, FaultScript::none(), |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 1, &[0.0; 100]);
            } else {
                let _ = ctx.recv(0, 1);
            }
            (ctx.bytes_sent(), ctx.msgs_sent())
        });
        assert_eq!(sent[0], (800, 1));
        assert_eq!(sent[1], (0, 0));
    }

    #[test]
    fn ledger_buckets_by_phase_and_totals_match_counters() {
        use crate::tag::TrafficPhase;
        let out = run_spmd(1, 2, FaultScript::none(), |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, Tag::Panel(0), &[0.0; 10]);
                ctx.send(1, Tag::Trailing(0), &[0.0; 20]);
                ctx.send(1, Tag::Checksum(0), &[0.0; 30]);
                ctx.send(1, Tag::Checkpoint(0), &[0.0; 40]);
                ctx.send(1, Tag::Recovery(0), &[0.0; 50]);
                ctx.send(1, 99, &[0.0; 60]);
            } else {
                for t in [
                    Tag::Panel(0),
                    Tag::Trailing(0),
                    Tag::Checksum(0),
                    Tag::Checkpoint(0),
                    Tag::Recovery(0),
                    Tag::User(99),
                ] {
                    let _ = ctx.recv(0, t);
                }
            }
            (ctx.traffic(), ctx.bytes_sent(), ctx.msgs_sent())
        });
        let (ledger, bytes, msgs) = out[0];
        let expect = [
            (TrafficPhase::Panel, 80),
            (TrafficPhase::TrailingUpdate, 160),
            (TrafficPhase::ChecksumUpdate, 240),
            (TrafficPhase::Checkpoint, 320),
            (TrafficPhase::Recovery, 400),
            (TrafficPhase::Other, 480),
        ];
        for (phase, b) in expect {
            assert_eq!(ledger.phase(phase).bytes, b, "{phase:?}");
            assert_eq!(ledger.phase(phase).msgs, 1, "{phase:?}");
        }
        // The ledger's per-phase totals sum to exactly the global counters.
        assert_eq!(ledger.total_bytes(), bytes);
        assert_eq!(ledger.total_msgs(), msgs);
        assert_eq!((bytes, msgs), (8 * 210, 6));
    }
}
