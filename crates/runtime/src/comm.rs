//! Per-process communication context: tagged point-to-point messages over
//! a pluggable [`Transport`], barriers, fail-point checks and the
//! per-phase traffic ledger. The tree collectives live in
//! [`crate::collectives`].

use crate::fault::{Board, FaultScript};
use crate::grid::Grid;
use crate::tag::{Leg, Tag, TrafficLedger, TrafficPhase};
use crate::transport::{MpscTransport, Msg, Transport};
use std::cell::{Cell, RefCell};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::{Arc, Barrier};
use std::time::Duration;

/// Receive timeout — a deadlock in the SPMD protocol aborts loudly instead
/// of hanging the test suite.
const RECV_TIMEOUT: Duration = Duration::from_secs(600);

/// Everything shared by the whole world, built once per [`crate::run_spmd`].
pub(crate) struct World {
    grid: Grid,
    transports: Vec<Box<dyn Transport>>,
    barrier: Arc<Barrier>,
    board: Arc<Board>,
    script: Arc<FaultScript>,
}

impl World {
    /// A world over the default in-process mpsc fabric.
    pub(crate) fn new(grid: Grid, script: Arc<FaultScript>) -> Self {
        let transports = MpscTransport::fabric(grid.size())
            .into_iter()
            .map(|t| Box::new(t) as Box<dyn Transport>)
            .collect();
        Self::with_transports(grid, script, transports)
    }

    /// A world over caller-supplied endpoints, in rank order.
    pub(crate) fn with_transports(grid: Grid, script: Arc<FaultScript>, transports: Vec<Box<dyn Transport>>) -> Self {
        assert_eq!(transports.len(), grid.size(), "one transport endpoint per rank");
        let w = grid.size();
        Self {
            grid,
            transports,
            barrier: Arc::new(Barrier::new(w)),
            board: Arc::new(Board::default()),
            script,
        }
    }

    pub(crate) fn into_ctxs(self) -> Vec<Ctx> {
        let World { grid, transports, barrier, board, script } = self;
        transports
            .into_iter()
            .enumerate()
            .map(|(rank, transport)| Ctx {
                rank,
                grid,
                transport,
                stash: RefCell::new(HashMap::new()),
                barrier: Arc::clone(&barrier),
                board: Arc::clone(&board),
                script: Arc::clone(&script),
                board_cursor: Cell::new(0),
                fired_points: RefCell::new(HashSet::new()),
                bytes_sent: Cell::new(0),
                msgs_sent: Cell::new(0),
                ledger: RefCell::new(TrafficLedger::default()),
            })
            .collect()
    }
}

/// Result of a fail-point check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailCheck {
    /// Nothing failed; continue.
    AllGood,
    /// One or more processes failed at this point. Every process observes
    /// the same victim list. `me` is `true` on the victims themselves, which
    /// must now drop their local data and act as replacement processes.
    Failure {
        /// Ranks that failed, in announcement order.
        victims: Vec<usize>,
        /// Whether the observing process is itself a victim.
        me: bool,
    },
}

/// A process's handle to the simulated machine. Not `Sync`: it lives on its
/// process's thread.
pub struct Ctx {
    rank: usize,
    grid: Grid,
    transport: Box<dyn Transport>,
    /// Out-of-order stash for selective receive by `(src, wire)`.
    #[allow(clippy::type_complexity)] // (src, wire) → FIFO of payloads; a type alias would obscure it
    stash: RefCell<HashMap<(usize, u64), VecDeque<Arc<[f64]>>>>,
    barrier: Arc<Barrier>,
    board: Arc<Board>,
    script: Arc<FaultScript>,
    board_cursor: Cell<usize>,
    /// Script entries this process has already executed — a fail point is
    /// fail-stop, so re-visiting the same point id (e.g. after a
    /// checkpoint/restart rollback re-runs an iteration) must not re-kill.
    fired_points: RefCell<HashSet<u64>>,
    bytes_sent: Cell<u64>,
    msgs_sent: Cell<u64>,
    ledger: RefCell<TrafficLedger>,
}

impl Ctx {
    /// This process's rank in `0..P·Q`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The grid geometry.
    #[inline]
    pub fn grid(&self) -> Grid {
        self.grid
    }

    /// This process's grid row.
    #[inline]
    pub fn myrow(&self) -> usize {
        self.grid.coords_of(self.rank).0
    }

    /// This process's grid column.
    #[inline]
    pub fn mycol(&self) -> usize {
        self.grid.coords_of(self.rank).1
    }

    /// Process rows `P`.
    #[inline]
    pub fn nprow(&self) -> usize {
        self.grid.nprow()
    }

    /// Process columns `Q`.
    #[inline]
    pub fn npcol(&self) -> usize {
        self.grid.npcol()
    }

    /// Bytes sent by this process so far (communication-volume accounting
    /// for the Section 6 model validation).
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent.get()
    }

    /// Messages sent by this process so far.
    pub fn msgs_sent(&self) -> u64 {
        self.msgs_sent.get()
    }

    /// Snapshot of the per-phase traffic ledger. Its phase totals sum to
    /// exactly [`Ctx::bytes_sent`] / [`Ctx::msgs_sent`].
    pub fn traffic(&self) -> TrafficLedger {
        *self.ledger.borrow()
    }

    // --- point to point ----------------------------------------------------

    /// Send `data` to `dst` under `tag`.
    pub fn send(&self, dst: usize, tag: impl Into<Tag>, data: &[f64]) {
        self.send_arc(dst, tag, Arc::from(data));
    }

    /// Send an already-shared payload to `dst` under `tag` without copying
    /// it — re-sending a retained `Arc<[f64]>` (e.g. a snapshot backup) is
    /// free at this layer.
    pub fn send_arc(&self, dst: usize, tag: impl Into<Tag>, payload: Arc<[f64]>) {
        let tag = tag.into();
        self.send_wire(dst, tag.wire(Leg::P2p), tag.phase(), payload);
    }

    /// Blocking selective receive of the next message from `src` with `tag`.
    /// FIFO order is preserved per `(src, tag)` pair.
    pub fn recv(&self, src: usize, tag: impl Into<Tag>) -> Vec<f64> {
        self.recv_arc(src, tag).to_vec()
    }

    /// [`Ctx::recv`] without the final copy: the payload stays shared with
    /// the sender (and any broadcast siblings).
    pub fn recv_arc(&self, src: usize, tag: impl Into<Tag>) -> Arc<[f64]> {
        let tag = tag.into();
        self.recv_wire(src, tag.wire(Leg::P2p))
    }

    pub(crate) fn send_wire(&self, dst: usize, wire: u64, phase: TrafficPhase, payload: Arc<[f64]>) {
        assert!(dst < self.grid.size(), "send: bad destination {dst}");
        self.bytes_sent.set(self.bytes_sent.get() + 8 * payload.len() as u64);
        self.msgs_sent.set(self.msgs_sent.get() + 1);
        self.ledger.borrow_mut().record(phase, 8 * payload.len() as u64);
        self.transport.send(dst, Msg { src: self.rank, wire, payload });
    }

    pub(crate) fn recv_wire(&self, src: usize, wire: u64) -> Arc<[f64]> {
        if let Some(q) = self.stash.borrow_mut().get_mut(&(src, wire)) {
            if let Some(d) = q.pop_front() {
                return d;
            }
        }
        loop {
            let msg = self.transport.recv(RECV_TIMEOUT).unwrap_or_else(|| {
                panic!("rank {}: recv(src={src}, wire={wire:#x}) timed out — SPMD protocol deadlock", self.rank)
            });
            if msg.src == src && msg.wire == wire {
                return msg.payload;
            }
            self.stash
                .borrow_mut()
                .entry((msg.src, msg.wire))
                .or_default()
                .push_back(msg.payload);
        }
    }

    // --- barriers -----------------------------------------------------------

    /// World barrier.
    pub fn barrier(&self) {
        self.barrier.wait();
    }

    /// Ranks of this process's grid row, in column order.
    pub fn row_ranks(&self) -> Vec<usize> {
        let p = self.myrow();
        (0..self.grid.npcol()).map(|q| self.grid.rank_of(p, q)).collect()
    }

    /// Ranks of this process's grid column, in row order.
    pub fn col_ranks(&self) -> Vec<usize> {
        let q = self.mycol();
        (0..self.grid.nprow()).map(|p| self.grid.rank_of(p, q)).collect()
    }

    // --- fault handling ----------------------------------------------------

    /// Fail-point check: must be called **collectively** (same sequence of
    /// points on all ranks) at quiescent phase boundaries.
    ///
    /// If the fault script kills this process here, it announces itself; the
    /// two enclosing barriers make the board read race-free, so every rank
    /// returns the same [`FailCheck`] for the same point.
    pub fn check_failpoint(&self, point: u64) -> FailCheck {
        if !self.script.is_empty()
            && self.script.victims_at(point).contains(&self.rank)
            && self.fired_points.borrow_mut().insert(point)
        {
            self.board.announce(self.rank);
        }
        self.barrier.wait();
        let new = self.board.read_from(self.board_cursor.get());
        self.board_cursor.set(self.board.len());
        self.barrier.wait();
        if new.is_empty() {
            FailCheck::AllGood
        } else {
            let me = new.contains(&self.rank);
            FailCheck::Failure { victims: new, me }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_spmd;

    #[test]
    fn p2p_send_recv() {
        run_spmd(1, 2, FaultScript::none(), |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 7, &[1.0, 2.0, 3.0]);
            } else {
                let d = ctx.recv(0, 7);
                assert_eq!(d, vec![1.0, 2.0, 3.0]);
            }
        });
    }

    #[test]
    fn p2p_arc_payload_is_forwarded_without_copy() {
        run_spmd(1, 3, FaultScript::none(), |ctx| {
            // 0 sends to 1, which forwards the same Arc to 2.
            if ctx.rank() == 0 {
                ctx.send(1, 7, &[4.0; 16]);
            } else if ctx.rank() == 1 {
                let d = ctx.recv_arc(0, 7);
                ctx.send_arc(2, 8, d);
            } else {
                assert_eq!(ctx.recv(1, 8), vec![4.0; 16]);
            }
        });
    }

    #[test]
    fn selective_recv_out_of_order() {
        run_spmd(1, 2, FaultScript::none(), |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 1, &[1.0]);
                ctx.send(1, 2, &[2.0]);
                ctx.send(1, 1, &[3.0]);
            } else {
                // Receive tag 2 first even though tag 1 arrived earlier,
                // then tag 1 twice in FIFO order.
                assert_eq!(ctx.recv(0, 2), vec![2.0]);
                assert_eq!(ctx.recv(0, 1), vec![1.0]);
                assert_eq!(ctx.recv(0, 1), vec![3.0]);
            }
        });
    }

    #[test]
    fn typed_tags_do_not_collide_with_numeric_tags() {
        run_spmd(1, 2, FaultScript::none(), |ctx| {
            if ctx.rank() == 0 {
                // Same channel number, three different subsystems.
                ctx.send(1, Tag::Panel(5), &[1.0]);
                ctx.send(1, Tag::Recovery(5), &[2.0]);
                ctx.send(1, 5, &[3.0]);
            } else {
                assert_eq!(ctx.recv(0, 5), vec![3.0]);
                assert_eq!(ctx.recv(0, Tag::Panel(5)), vec![1.0]);
                assert_eq!(ctx.recv(0, Tag::Recovery(5)), vec![2.0]);
            }
        });
    }

    #[test]
    fn failpoint_no_failure() {
        run_spmd(2, 2, FaultScript::none(), |ctx| {
            assert_eq!(ctx.check_failpoint(1), FailCheck::AllGood);
            assert_eq!(ctx.check_failpoint(2), FailCheck::AllGood);
        });
    }

    #[test]
    fn failpoint_single_victim_observed_by_all() {
        let out = run_spmd(2, 2, FaultScript::one(2, 50), |ctx| {
            assert_eq!(ctx.check_failpoint(49), FailCheck::AllGood);
            let res = ctx.check_failpoint(50);
            match &res {
                FailCheck::Failure { victims, me } => {
                    assert_eq!(victims, &vec![2]);
                    assert_eq!(*me, ctx.rank() == 2);
                }
                _ => panic!("rank {} missed the failure", ctx.rank()),
            }
            // Life goes on after recovery.
            assert_eq!(ctx.check_failpoint(51), FailCheck::AllGood);
            1
        });
        assert_eq!(out, vec![1; 4]);
    }

    #[test]
    fn failpoint_two_simultaneous_victims() {
        use crate::PlannedFailure;
        let script = FaultScript::new(vec![PlannedFailure { victim: 0, point: 5 }, PlannedFailure { victim: 3, point: 5 }]);
        run_spmd(2, 2, script, |ctx| match ctx.check_failpoint(5) {
            FailCheck::Failure { mut victims, me } => {
                victims.sort_unstable();
                assert_eq!(victims, vec![0, 3]);
                assert_eq!(me, ctx.rank() == 0 || ctx.rank() == 3);
            }
            _ => panic!("missed failure"),
        });
    }

    #[test]
    fn traffic_counters() {
        let sent = run_spmd(1, 2, FaultScript::none(), |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 1, &[0.0; 100]);
            } else {
                let _ = ctx.recv(0, 1);
            }
            (ctx.bytes_sent(), ctx.msgs_sent())
        });
        assert_eq!(sent[0], (800, 1));
        assert_eq!(sent[1], (0, 0));
    }

    #[test]
    fn ledger_buckets_by_phase_and_totals_match_counters() {
        use crate::tag::TrafficPhase;
        let out = run_spmd(1, 2, FaultScript::none(), |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, Tag::Panel(0), &[0.0; 10]);
                ctx.send(1, Tag::Trailing(0), &[0.0; 20]);
                ctx.send(1, Tag::Checksum(0), &[0.0; 30]);
                ctx.send(1, Tag::Checkpoint(0), &[0.0; 40]);
                ctx.send(1, Tag::Recovery(0), &[0.0; 50]);
                ctx.send(1, 99, &[0.0; 60]);
            } else {
                for t in [
                    Tag::Panel(0),
                    Tag::Trailing(0),
                    Tag::Checksum(0),
                    Tag::Checkpoint(0),
                    Tag::Recovery(0),
                    Tag::User(99),
                ] {
                    let _ = ctx.recv(0, t);
                }
            }
            (ctx.traffic(), ctx.bytes_sent(), ctx.msgs_sent())
        });
        let (ledger, bytes, msgs) = out[0];
        let expect = [
            (TrafficPhase::Panel, 80),
            (TrafficPhase::TrailingUpdate, 160),
            (TrafficPhase::ChecksumUpdate, 240),
            (TrafficPhase::Checkpoint, 320),
            (TrafficPhase::Recovery, 400),
            (TrafficPhase::Other, 480),
        ];
        for (phase, b) in expect {
            assert_eq!(ledger.phase(phase).bytes, b, "{phase:?}");
            assert_eq!(ledger.phase(phase).msgs, 1, "{phase:?}");
        }
        // The ledger's per-phase totals sum to exactly the global counters.
        assert_eq!(ledger.total_bytes(), bytes);
        assert_eq!(ledger.total_msgs(), msgs);
        assert_eq!((bytes, msgs), (8 * 210, 6));
    }
}
