//! Per-process communication context: tagged point-to-point messages,
//! deterministic collectives, barriers and fail-point checks.

use crate::fault::{Board, FaultScript};
use crate::grid::Grid;
use crossbeam_channel::{unbounded, Receiver, Sender};
use std::cell::{Cell, RefCell};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::{Arc, Barrier};
use std::time::Duration;

/// Receive timeout — a deadlock in the SPMD protocol aborts loudly instead
/// of hanging the test suite.
const RECV_TIMEOUT: Duration = Duration::from_secs(600);

struct Msg {
    src: usize,
    tag: u64,
    data: Vec<f64>,
}

/// Everything shared by the whole world, built once per [`crate::run_spmd`].
pub(crate) struct World {
    grid: Grid,
    senders: Arc<Vec<Sender<Msg>>>,
    receivers: Vec<Receiver<Msg>>,
    barrier: Arc<Barrier>,
    board: Arc<Board>,
    script: Arc<FaultScript>,
}

impl World {
    pub(crate) fn new(grid: Grid, script: Arc<FaultScript>) -> Self {
        let w = grid.size();
        let mut senders = Vec::with_capacity(w);
        let mut receivers = Vec::with_capacity(w);
        for _ in 0..w {
            let (s, r) = unbounded();
            senders.push(s);
            receivers.push(r);
        }
        Self {
            grid,
            senders: Arc::new(senders),
            receivers,
            barrier: Arc::new(Barrier::new(w)),
            board: Arc::new(Board::default()),
            script,
        }
    }

    pub(crate) fn into_ctxs(self) -> Vec<Ctx> {
        let World { grid, senders, receivers, barrier, board, script } = self;
        receivers
            .into_iter()
            .enumerate()
            .map(|(rank, rx)| Ctx {
                rank,
                grid,
                senders: Arc::clone(&senders),
                rx,
                stash: RefCell::new(HashMap::new()),
                barrier: Arc::clone(&barrier),
                board: Arc::clone(&board),
                script: Arc::clone(&script),
                board_cursor: Cell::new(0),
                fired_points: RefCell::new(HashSet::new()),
                bytes_sent: Cell::new(0),
                msgs_sent: Cell::new(0),
            })
            .collect()
    }
}

/// Result of a fail-point check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailCheck {
    /// Nothing failed; continue.
    AllGood,
    /// One or more processes failed at this point. Every process observes
    /// the same victim list. `me` is `true` on the victims themselves, which
    /// must now drop their local data and act as replacement processes.
    Failure {
        /// Ranks that failed, in announcement order.
        victims: Vec<usize>,
        /// Whether the observing process is itself a victim.
        me: bool,
    },
}

/// A process's handle to the simulated machine. Not `Sync`: it lives on its
/// process's thread.
pub struct Ctx {
    rank: usize,
    grid: Grid,
    senders: Arc<Vec<Sender<Msg>>>,
    rx: Receiver<Msg>,
    /// Out-of-order stash for selective receive by `(src, tag)`.
    #[allow(clippy::type_complexity)] // (src, tag) → FIFO of payloads; a type alias would obscure it
    stash: RefCell<HashMap<(usize, u64), VecDeque<Vec<f64>>>>,
    barrier: Arc<Barrier>,
    board: Arc<Board>,
    script: Arc<FaultScript>,
    board_cursor: Cell<usize>,
    /// Script entries this process has already executed — a fail point is
    /// fail-stop, so re-visiting the same point id (e.g. after a
    /// checkpoint/restart rollback re-runs an iteration) must not re-kill.
    fired_points: RefCell<HashSet<u64>>,
    bytes_sent: Cell<u64>,
    msgs_sent: Cell<u64>,
}

impl Ctx {
    /// This process's rank in `0..P·Q`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The grid geometry.
    #[inline]
    pub fn grid(&self) -> Grid {
        self.grid
    }

    /// This process's grid row.
    #[inline]
    pub fn myrow(&self) -> usize {
        self.grid.coords_of(self.rank).0
    }

    /// This process's grid column.
    #[inline]
    pub fn mycol(&self) -> usize {
        self.grid.coords_of(self.rank).1
    }

    /// Process rows `P`.
    #[inline]
    pub fn nprow(&self) -> usize {
        self.grid.nprow()
    }

    /// Process columns `Q`.
    #[inline]
    pub fn npcol(&self) -> usize {
        self.grid.npcol()
    }

    /// Bytes sent by this process so far (communication-volume accounting
    /// for the Section 6 model validation).
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent.get()
    }

    /// Messages sent by this process so far.
    pub fn msgs_sent(&self) -> u64 {
        self.msgs_sent.get()
    }

    // --- point to point ----------------------------------------------------

    /// Send `data` to `dst` under `tag`.
    pub fn send(&self, dst: usize, tag: u64, data: &[f64]) {
        assert!(dst < self.grid.size(), "send: bad destination {dst}");
        self.bytes_sent.set(self.bytes_sent.get() + 8 * data.len() as u64);
        self.msgs_sent.set(self.msgs_sent.get() + 1);
        self.senders[dst]
            .send(Msg { src: self.rank, tag, data: data.to_vec() })
            .expect("send: world torn down");
    }

    /// Blocking selective receive of the next message from `src` with `tag`.
    /// FIFO order is preserved per `(src, tag)` pair.
    pub fn recv(&self, src: usize, tag: u64) -> Vec<f64> {
        if let Some(q) = self.stash.borrow_mut().get_mut(&(src, tag)) {
            if let Some(d) = q.pop_front() {
                return d;
            }
        }
        loop {
            let msg = self
                .rx
                .recv_timeout(RECV_TIMEOUT)
                .unwrap_or_else(|_| panic!("rank {}: recv(src={src}, tag={tag}) timed out — SPMD protocol deadlock", self.rank));
            if msg.src == src && msg.tag == tag {
                return msg.data;
            }
            self.stash
                .borrow_mut()
                .entry((msg.src, msg.tag))
                .or_default()
                .push_back(msg.data);
        }
    }

    // --- barriers -----------------------------------------------------------

    /// World barrier.
    pub fn barrier(&self) {
        self.barrier.wait();
    }

    // --- broadcasts ----------------------------------------------------------

    fn bcast_group(&self, members: &[usize], root: usize, data: &mut Vec<f64>, tag: u64) {
        debug_assert!(members.contains(&root));
        if self.rank == root {
            for &m in members {
                if m != root {
                    self.send(m, tag, data);
                }
            }
        } else if members.contains(&self.rank) {
            *data = self.recv(root, tag);
        }
    }

    /// Broadcast within this process's grid row from the process at column
    /// `root_q`. Root passes the payload; the others' `data` is overwritten.
    pub fn bcast_row(&self, root_q: usize, data: &mut Vec<f64>, tag: u64) {
        let members = self.row_ranks();
        let root = self.grid.rank_of(self.myrow(), root_q);
        self.bcast_group(&members, root, data, tag);
    }

    /// Broadcast within this process's grid column from the process at row
    /// `root_p`.
    pub fn bcast_col(&self, root_p: usize, data: &mut Vec<f64>, tag: u64) {
        let members = self.col_ranks();
        let root = self.grid.rank_of(root_p, self.mycol());
        self.bcast_group(&members, root, data, tag);
    }

    /// Broadcast to all processes from `root` (a rank).
    pub fn bcast_world(&self, root: usize, data: &mut Vec<f64>, tag: u64) {
        let members: Vec<usize> = (0..self.grid.size()).collect();
        self.bcast_group(&members, root, data, tag);
    }

    // --- reductions -----------------------------------------------------------

    /// Deterministic element-wise sum-reduce over `members` to `root`:
    /// contributions are added in member order regardless of arrival order,
    /// so results are bit-reproducible. Only the root's `data` holds the
    /// result afterwards.
    fn reduce_sum_group(&self, members: &[usize], root: usize, data: &mut [f64], tag: u64) {
        debug_assert!(members.contains(&root));
        if self.rank == root {
            let mut parts: HashMap<usize, Vec<f64>> = HashMap::new();
            for &m in members {
                if m != root {
                    parts.insert(m, self.recv(m, tag));
                }
            }
            let mine = data.to_vec();
            data.fill(0.0);
            for &m in members {
                let part = if m == root { &mine } else { &parts[&m] };
                assert_eq!(part.len(), data.len(), "reduce: length mismatch from rank {m}");
                for (d, s) in data.iter_mut().zip(part) {
                    *d += s;
                }
            }
        } else if members.contains(&self.rank) {
            self.send(root, tag, data);
        }
    }

    fn allreduce_sum_group(&self, members: &[usize], data: &mut [f64], tag: u64) {
        let root = members[0];
        self.reduce_sum_group(members, root, data, tag);
        let mut v = data.to_vec();
        self.bcast_group(members, root, &mut v, tag.wrapping_add(1));
        data.copy_from_slice(&v);
    }

    /// Sum-reduce within the grid row to column `root_q`.
    pub fn reduce_sum_row(&self, root_q: usize, data: &mut [f64], tag: u64) {
        let members = self.row_ranks();
        let root = self.grid.rank_of(self.myrow(), root_q);
        self.reduce_sum_group(&members, root, data, tag);
    }

    /// Sum-reduce within the grid column to row `root_p`.
    pub fn reduce_sum_col(&self, root_p: usize, data: &mut [f64], tag: u64) {
        let members = self.col_ranks();
        let root = self.grid.rank_of(root_p, self.mycol());
        self.reduce_sum_group(&members, root, data, tag);
    }

    /// All-reduce (sum) within the grid row.
    pub fn allreduce_sum_row(&self, data: &mut [f64], tag: u64) {
        let members = self.row_ranks();
        self.allreduce_sum_group(&members, data, tag);
    }

    /// All-reduce (sum) within the grid column.
    pub fn allreduce_sum_col(&self, data: &mut [f64], tag: u64) {
        let members = self.col_ranks();
        self.allreduce_sum_group(&members, data, tag);
    }

    /// All-reduce (sum) over the whole grid.
    pub fn allreduce_sum_world(&self, data: &mut [f64], tag: u64) {
        let members: Vec<usize> = (0..self.grid.size()).collect();
        self.allreduce_sum_group(&members, data, tag);
    }

    /// Ranks of this process's grid row, in column order.
    pub fn row_ranks(&self) -> Vec<usize> {
        let p = self.myrow();
        (0..self.grid.npcol()).map(|q| self.grid.rank_of(p, q)).collect()
    }

    /// Ranks of this process's grid column, in row order.
    pub fn col_ranks(&self) -> Vec<usize> {
        let q = self.mycol();
        (0..self.grid.nprow()).map(|p| self.grid.rank_of(p, q)).collect()
    }

    // --- fault handling ----------------------------------------------------

    /// Fail-point check: must be called **collectively** (same sequence of
    /// points on all ranks) at quiescent phase boundaries.
    ///
    /// If the fault script kills this process here, it announces itself; the
    /// two enclosing barriers make the board read race-free, so every rank
    /// returns the same [`FailCheck`] for the same point.
    pub fn check_failpoint(&self, point: u64) -> FailCheck {
        if !self.script.is_empty()
            && self.script.victims_at(point).contains(&self.rank)
            && self.fired_points.borrow_mut().insert(point)
        {
            self.board.announce(self.rank);
        }
        self.barrier.wait();
        let new = self.board.read_from(self.board_cursor.get());
        self.board_cursor.set(self.board.len());
        self.barrier.wait();
        if new.is_empty() {
            FailCheck::AllGood
        } else {
            let me = new.contains(&self.rank);
            FailCheck::Failure { victims: new, me }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_spmd;

    #[test]
    fn p2p_send_recv() {
        run_spmd(1, 2, FaultScript::none(), |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 7, &[1.0, 2.0, 3.0]);
            } else {
                let d = ctx.recv(0, 7);
                assert_eq!(d, vec![1.0, 2.0, 3.0]);
            }
        });
    }

    #[test]
    fn selective_recv_out_of_order() {
        run_spmd(1, 2, FaultScript::none(), |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 1, &[1.0]);
                ctx.send(1, 2, &[2.0]);
                ctx.send(1, 1, &[3.0]);
            } else {
                // Receive tag 2 first even though tag 1 arrived earlier,
                // then tag 1 twice in FIFO order.
                assert_eq!(ctx.recv(0, 2), vec![2.0]);
                assert_eq!(ctx.recv(0, 1), vec![1.0]);
                assert_eq!(ctx.recv(0, 1), vec![3.0]);
            }
        });
    }

    #[test]
    fn row_and_col_broadcast() {
        run_spmd(2, 3, FaultScript::none(), |ctx| {
            // Row broadcast from column 1: payload identifies the row.
            let mut d = if ctx.mycol() == 1 {
                vec![ctx.myrow() as f64 * 10.0]
            } else {
                vec![]
            };
            ctx.bcast_row(1, &mut d, 5);
            assert_eq!(d, vec![ctx.myrow() as f64 * 10.0]);

            // Column broadcast from row 0.
            let mut d = if ctx.myrow() == 0 {
                vec![ctx.mycol() as f64]
            } else {
                vec![]
            };
            ctx.bcast_col(0, &mut d, 6);
            assert_eq!(d, vec![ctx.mycol() as f64]);
        });
    }

    #[test]
    fn world_broadcast() {
        run_spmd(2, 2, FaultScript::none(), |ctx| {
            let mut d = if ctx.rank() == 3 { vec![42.0] } else { vec![] };
            ctx.bcast_world(3, &mut d, 9);
            assert_eq!(d, vec![42.0]);
        });
    }

    #[test]
    fn deterministic_row_reduce() {
        let results = run_spmd(2, 4, FaultScript::none(), |ctx| {
            let mut d = vec![ctx.mycol() as f64 + 1.0, 1.0];
            ctx.reduce_sum_row(0, &mut d, 11);
            if ctx.mycol() == 0 {
                Some(d)
            } else {
                None
            }
        });
        // Each row root holds [1+2+3+4, 4].
        for r in results.into_iter().flatten() {
            assert_eq!(r, vec![10.0, 4.0]);
        }
    }

    #[test]
    fn allreduce_world() {
        let results = run_spmd(2, 2, FaultScript::none(), |ctx| {
            let mut d = vec![ctx.rank() as f64];
            ctx.allreduce_sum_world(&mut d, 21);
            d[0]
        });
        assert_eq!(results, vec![6.0; 4]);
    }

    #[test]
    fn col_reduce_to_row1() {
        let results = run_spmd(3, 2, FaultScript::none(), |ctx| {
            let mut d = vec![(ctx.myrow() + 1) as f64];
            ctx.reduce_sum_col(1, &mut d, 31);
            (ctx.myrow() == 1).then_some(d[0])
        });
        let sums: Vec<f64> = results.into_iter().flatten().collect();
        assert_eq!(sums, vec![6.0, 6.0]);
    }

    #[test]
    fn failpoint_no_failure() {
        run_spmd(2, 2, FaultScript::none(), |ctx| {
            assert_eq!(ctx.check_failpoint(1), FailCheck::AllGood);
            assert_eq!(ctx.check_failpoint(2), FailCheck::AllGood);
        });
    }

    #[test]
    fn failpoint_single_victim_observed_by_all() {
        let out = run_spmd(2, 2, FaultScript::one(2, 50), |ctx| {
            assert_eq!(ctx.check_failpoint(49), FailCheck::AllGood);
            let res = ctx.check_failpoint(50);
            match &res {
                FailCheck::Failure { victims, me } => {
                    assert_eq!(victims, &vec![2]);
                    assert_eq!(*me, ctx.rank() == 2);
                }
                _ => panic!("rank {} missed the failure", ctx.rank()),
            }
            // Life goes on after recovery.
            assert_eq!(ctx.check_failpoint(51), FailCheck::AllGood);
            1
        });
        assert_eq!(out, vec![1; 4]);
    }

    #[test]
    fn failpoint_two_simultaneous_victims() {
        use crate::PlannedFailure;
        let script = FaultScript::new(vec![
            PlannedFailure { victim: 0, point: 5 },
            PlannedFailure { victim: 3, point: 5 },
        ]);
        run_spmd(2, 2, script, |ctx| {
            match ctx.check_failpoint(5) {
                FailCheck::Failure { mut victims, me } => {
                    victims.sort_unstable();
                    assert_eq!(victims, vec![0, 3]);
                    assert_eq!(me, ctx.rank() == 0 || ctx.rank() == 3);
                }
                _ => panic!("missed failure"),
            }
        });
    }

    #[test]
    fn traffic_counters() {
        let sent = run_spmd(1, 2, FaultScript::none(), |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 1, &[0.0; 100]);
            } else {
                let _ = ctx.recv(0, 1);
            }
            (ctx.bytes_sent(), ctx.msgs_sent())
        });
        assert_eq!(sent[0], (800, 1));
        assert_eq!(sent[1], (0, 0));
    }
}
