//! Shared-memory Householder QR (`geqr2`/`geqrf`/`orgqr`) — the sequential
//! correctness oracle for the distributed `pdgeqrf` and the FT
//! `ft_pdgeqrf` (the second solver of the ABFT framework).
//!
//! Storage follows LAPACK: `R` in the upper triangle (diagonal included),
//! reflector `j` below the diagonal of column `j` with an implicit unit at
//! the diagonal. `tau` has length `n` for an `n×n` matrix.
//!
//! QR is verified **eigen-free**: unlike the Hessenberg pipeline there is
//! no spectrum to compare, so correctness is the pair of scaled residuals
//! `‖A − Q·R‖∞/(‖A‖∞·N·ε)` ([`qr_residual`]) and `‖QᵀQ − I‖∞/(N·ε)`
//! ([`crate::residual::orthogonality_residual`]).

use crate::householder::{larfb, larfg, larft};
use ft_dense::level3::gemm;
use ft_dense::norms::inf_norm;
use ft_dense::{Matrix, Side, Trans, EPS};

/// Unblocked Householder QR of the `m×w` sub-panel `A(k..n, k..k+w)`
/// (LAPACK `dgeqr2` restricted to a panel). Reflector units sit on the
/// diagonal; `tau[j]` receives the scalar for column `k+j`.
pub fn geqr2(a: &mut Matrix, k: usize, w: usize, tau: &mut [f64]) {
    let n = a.rows();
    let lda = n;
    assert!(k + w <= a.cols() && k + w <= n, "geqr2: panel out of range");
    assert!(tau.len() >= w, "geqr2: tau too short");
    for (j, t) in tau.iter_mut().enumerate().take(w) {
        let c = k + j;
        let buf = a.as_mut_slice();
        // Generate H_j annihilating A(c+1..n, c).
        let mut alpha = buf[c + c * lda];
        let tau_j = {
            let x = &mut buf[c * lda + c + 1..c * lda + n];
            larfg(&mut alpha, x)
        };
        buf[c + c * lda] = alpha;
        *t = tau_j;
        // Apply H_j to the remaining panel columns (rows c..n).
        let rem = k + w - c - 1;
        if rem > 0 && tau_j != 0.0 {
            let mut v = vec![0.0; n - c];
            v[0] = 1.0;
            v[1..].copy_from_slice(&buf[c * lda + c + 1..c * lda + n]);
            let (_, cpart) = buf.split_at_mut((c + 1) * lda);
            crate::householder::larf_left(tau_j, &v, n - c, rem, &mut cpart[c..], lda);
        }
    }
}

/// Extract the explicit `(n−k)×w` reflector block `V` of panel `k` (unit
/// diagonal materialized, zeros above).
fn panel_v(a: &Matrix, k: usize, w: usize) -> Matrix {
    let n = a.rows();
    let m = n - k;
    Matrix::from_fn(m, w, |i, l| match i.cmp(&l) {
        std::cmp::Ordering::Less => 0.0,
        std::cmp::Ordering::Equal => 1.0,
        std::cmp::Ordering::Greater => a[(k + i, k + l)],
    })
}

/// Blocked Householder QR of the square matrix `a` (LAPACK `dgeqrf` with
/// panel width `nb`). On exit: `R` in the upper triangle, reflectors below
/// the diagonal, `tau` (length ≥ n) filled.
pub fn geqrf(a: &mut Matrix, nb: usize, tau: &mut [f64]) {
    let n = a.rows();
    assert_eq!(a.cols(), n, "geqrf: matrix must be square");
    assert!(tau.len() >= n, "geqrf: tau too short");
    assert!(nb >= 1, "geqrf: nb must be positive");
    let lda = n;
    let mut k = 0;
    while k < n {
        let w = nb.min(n - k);
        geqr2(a, k, w, &mut tau[k..k + w]);
        // Block-apply Qᵀ = I − V·Tᵀ·Vᵀ to the trailing columns k+w..n.
        let trail = n - k - w;
        if trail > 0 {
            let v = panel_v(a, k, w);
            let m = v.rows();
            let mut t = Matrix::zeros(w, w);
            larft(m, w, v.as_slice(), m.max(1), &tau[k..k + w], t.as_mut_slice(), w);
            let (_, cpart) = a.as_mut_slice().split_at_mut((k + w) * lda);
            larfb(Side::Left, Trans::Yes, m, trail, w, v.as_slice(), m.max(1), t.as_slice(), w, &mut cpart[k..], lda);
        }
        k += w;
    }
}

/// Form the orthogonal `Q` of a [`geqrf`] factorization (LAPACK `dorgqr`):
/// `Q = H₀·H₁⋯H_{n−1}` applied to the identity, accumulated in reverse.
pub fn orgqr(a: &Matrix, tau: &[f64]) -> Matrix {
    let n = a.rows();
    assert_eq!(a.cols(), n, "orgqr: matrix must be square");
    assert!(tau.len() >= n, "orgqr: tau too short");
    let mut q = Matrix::identity(n);
    let ldq = n;
    for c in (0..n).rev() {
        let m = n - c;
        let mut v = vec![0.0; m];
        v[0] = 1.0;
        for i in 1..m {
            v[i] = a[(c + i, c)];
        }
        let qbuf = q.as_mut_slice();
        crate::householder::larf_left(tau[c], &v, m, m, &mut qbuf[c * ldq + c..], ldq);
    }
    q
}

/// Extract the upper-triangular `R` (diagonal included) from a [`geqrf`]
/// output, zeroing the reflector storage below.
pub fn extract_r(a: &Matrix) -> Matrix {
    let n = a.rows();
    Matrix::from_fn(n, a.cols(), |i, j| if i <= j { a[(i, j)] } else { 0.0 })
}

/// Scaled QR residual `‖A − Q·R‖∞ / (‖A‖∞·N·ε)` — the eigen-free
/// correctness oracle, judged against the same
/// [`crate::residual::RESIDUAL_THRESHOLD`] as the Hessenberg `r∞`.
pub fn qr_residual(a: &Matrix, q: &Matrix, r: &Matrix) -> f64 {
    let n = a.rows();
    assert!(n > 0, "empty matrix");
    assert_eq!(a.cols(), n);
    assert_eq!((q.rows(), q.cols()), (n, n));
    assert_eq!((r.rows(), r.cols()), (n, n));
    let mut res = a.clone();
    gemm(Trans::No, Trans::No, n, n, n, -1.0, q.as_slice(), n, r.as_slice(), n, 1.0, res.as_mut_slice(), n);
    let na = inf_norm(a);
    if na == 0.0 {
        return 0.0;
    }
    inf_norm(&res) / (na * n as f64 * EPS)
}

/// `true` if every entry strictly below the diagonal is exactly 0.
pub fn is_upper_triangular(r: &Matrix) -> bool {
    for j in 0..r.cols() {
        for i in j + 1..r.rows() {
            if r[(i, j)] != 0.0 {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::residual::{orthogonality_residual, RESIDUAL_THRESHOLD};
    use ft_dense::gen::uniform_indexed_matrix;

    #[test]
    fn geqrf_factorizes_random_matrices() {
        for (n, nb, seed) in [(16usize, 4usize, 1u64), (17, 4, 2), (9, 3, 3), (5, 8, 4), (1, 2, 5)] {
            let a0 = uniform_indexed_matrix(n, n, seed);
            let mut a = a0.clone();
            let mut tau = vec![0.0; n];
            geqrf(&mut a, nb, &mut tau);
            let q = orgqr(&a, &tau);
            let r = extract_r(&a);
            assert!(is_upper_triangular(&r));
            let res = qr_residual(&a0, &q, &r);
            let orth = orthogonality_residual(&q);
            assert!(res < RESIDUAL_THRESHOLD, "n={n} nb={nb}: residual {res}");
            assert!(orth < RESIDUAL_THRESHOLD, "n={n} nb={nb}: orthogonality {orth}");
        }
    }

    #[test]
    fn blocked_matches_unblocked() {
        let n = 13;
        let a0 = uniform_indexed_matrix(n, n, 7);
        let mut a1 = a0.clone();
        let mut tau1 = vec![0.0; n];
        geqr2(&mut a1, 0, n, &mut tau1);
        for nb in [1usize, 3, 4, 16] {
            let mut a2 = a0.clone();
            let mut tau2 = vec![0.0; n];
            geqrf(&mut a2, nb, &mut tau2);
            // Same reflectors (the blocked algorithm runs the identical
            // column math, just batched), so R and tau agree to roundoff.
            let d = extract_r(&a1).max_abs_diff(&extract_r(&a2));
            assert!(d < 1e-10, "nb={nb}: |R1 − R2| = {d}");
            for j in 0..n {
                assert!((tau1[j] - tau2[j]).abs() < 1e-12, "nb={nb}: tau[{j}]");
            }
        }
    }

    #[test]
    fn already_triangular_is_fixpoint_up_to_signs() {
        // An upper-triangular input with positive diagonal: every larfg sees
        // a zero tail except for sign flips; Q must be diagonal ±1.
        let n = 6;
        let a0 = Matrix::from_fn(n, n, |i, j| if i <= j { 1.0 + (i + 2 * j) as f64 } else { 0.0 });
        let mut a = a0.clone();
        let mut tau = vec![0.0; n];
        geqrf(&mut a, 3, &mut tau);
        let q = orgqr(&a, &tau);
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    assert!(q[(i, j)].abs() < 1e-12);
                }
            }
        }
        assert!(qr_residual(&a0, &q, &extract_r(&a)) < RESIDUAL_THRESHOLD);
    }
}
