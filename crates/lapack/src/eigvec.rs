//! Eigenvectors of a real upper Hessenberg matrix by inverse iteration —
//! the LAPACK `DHSEIN` approach: for an eigenvalue estimate `λ`, a few
//! iterations of `(H − λI)·x_{k+1} = x_k` converge onto the eigenvector,
//! using the Hessenberg structure for an O(n²) shifted solve.
//!
//! Real eigenvalues only (complex pairs would need complex arithmetic; the
//! dominant eigenvalue of the stochastic matrices in the motivating
//! PageRank/spectral workloads is always real by Perron–Frobenius).

use ft_dense::level1::nrm2;
use ft_dense::{Matrix, EPS};

/// Failure modes of the eigenvector computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EigVecError {
    /// The matrix is not upper Hessenberg.
    NotHessenberg,
    /// Inverse iteration failed to converge (λ far from any eigenvalue).
    NoConvergence,
}

impl std::fmt::Display for EigVecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EigVecError::NotHessenberg => write!(f, "input matrix is not upper Hessenberg"),
            EigVecError::NoConvergence => write!(f, "inverse iteration did not converge"),
        }
    }
}

impl std::error::Error for EigVecError {}

/// Solve `(H − λI)·x = b` in place for upper Hessenberg `H`, O(n²):
/// Gaussian elimination with partial pivoting touches only adjacent rows
/// (one subdiagonal), so `U` stays upper triangular. Near-singular pivots —
/// expected, since λ *is* an eigenvalue — are replaced by `ε·‖H‖`
/// (the standard inverse-iteration safeguard).
pub fn solve_shifted_hessenberg(h: &Matrix, lambda: f64, b: &mut [f64]) {
    let n = h.rows();
    assert_eq!(h.cols(), n);
    assert_eq!(b.len(), n);
    if n == 0 {
        return;
    }
    // Working copy of H − λI (row-major band would be leaner; clarity wins).
    let mut m = h.clone();
    for i in 0..n {
        m[(i, i)] -= lambda;
    }
    let smin = EPS * ft_dense::norms::inf_norm(h).max(1.0);

    // Forward elimination of the single subdiagonal, with pivoting.
    for j in 0..n - 1 {
        if m[(j + 1, j)].abs() > m[(j, j)].abs() {
            // Swap rows j and j+1 (columns j.. only; earlier are zero).
            for c in j..n {
                let t = m[(j, c)];
                m[(j, c)] = m[(j + 1, c)];
                m[(j + 1, c)] = t;
            }
            b.swap(j, j + 1);
        }
        let mut piv = m[(j, j)];
        if piv.abs() < smin {
            piv = smin.copysign(if piv == 0.0 { 1.0 } else { piv });
            m[(j, j)] = piv;
        }
        let l = m[(j + 1, j)] / piv;
        if l != 0.0 {
            for c in j + 1..n {
                let v = m[(j, c)];
                m[(j + 1, c)] -= l * v;
            }
            b[j + 1] -= l * b[j];
        }
        m[(j + 1, j)] = 0.0;
    }
    // Back substitution.
    for j in (0..n).rev() {
        let mut piv = m[(j, j)];
        if piv.abs() < smin {
            piv = smin.copysign(if piv == 0.0 { 1.0 } else { piv });
        }
        let x = b[j] / piv;
        b[j] = x;
        for i in 0..j {
            b[i] -= m[(i, j)] * x;
        }
    }
}

/// Eigenvector of upper Hessenberg `h` for the (real) eigenvalue `lambda`,
/// by inverse iteration from a deterministic start. The result is
/// normalized (‖v‖₂ = 1) with its largest-magnitude entry positive.
pub fn hessenberg_eigenvector(h: &Matrix, lambda: f64) -> Result<Vec<f64>, EigVecError> {
    if !crate::residual::is_hessenberg(h) {
        return Err(EigVecError::NotHessenberg);
    }
    let n = h.rows();
    if n == 0 {
        return Ok(vec![]);
    }
    // Deterministic, unstructured start vector.
    let mut v: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 * 0.7318).sin() * 0.5).collect();
    let norm0 = nrm2(&v);
    for x in v.iter_mut() {
        *x /= norm0;
    }

    let hnorm = ft_dense::norms::inf_norm(h).max(1.0);
    for _ in 0..5 {
        solve_shifted_hessenberg(h, lambda, &mut v);
        let nv = nrm2(&v);
        if !nv.is_finite() || nv == 0.0 {
            return Err(EigVecError::NoConvergence);
        }
        for x in v.iter_mut() {
            *x /= nv;
        }
        // Converged when the residual ‖H·v − λ·v‖ is at rounding level.
        let mut hv = vec![0.0; n];
        ft_dense::level2::gemv(ft_dense::Trans::No, n, n, 1.0, h.as_slice(), n, &v, 0.0, &mut hv);
        let res: f64 = hv.iter().zip(&v).map(|(a, b)| (a - lambda * b).abs()).fold(0.0, f64::max);
        if res <= hnorm * EPS * 100.0 * n as f64 {
            break;
        }
    }
    // Final residual check.
    let mut hv = vec![0.0; n];
    ft_dense::level2::gemv(ft_dense::Trans::No, n, n, 1.0, h.as_slice(), n, &v, 0.0, &mut hv);
    let res: f64 = hv.iter().zip(&v).map(|(a, b)| (a - lambda * b).abs()).fold(0.0, f64::max);
    if res > hnorm * 1e-8 {
        return Err(EigVecError::NoConvergence);
    }
    // Sign convention.
    let imax = crate::householder_iamax(&v);
    if v[imax] < 0.0 {
        for x in v.iter_mut() {
            *x = -*x;
        }
    }
    Ok(v)
}

/// Eigenvector of a **general** matrix `a` for real eigenvalue `lambda`:
/// reduce to Hessenberg form, inverse-iterate there, transform back with
/// `Q` (`v_A = Q·v_H`).
pub fn eigenvector(a: &Matrix, lambda: f64, nb: usize) -> Result<Vec<f64>, EigVecError> {
    let n = a.rows();
    assert_eq!(a.cols(), n);
    let mut work = a.clone();
    let mut tau = vec![0.0; n.saturating_sub(1)];
    crate::hessenberg::gehrd(&mut work, nb, &mut tau);
    let h = crate::hessenberg::extract_h(&work);
    let vh = hessenberg_eigenvector(&h, lambda)?;
    let q = crate::hessenberg::orghr(&work, &tau);
    let mut v = vec![0.0; n];
    ft_dense::level2::gemv(ft_dense::Trans::No, n, n, 1.0, q.as_slice(), n, &vh, 0.0, &mut v);
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_dense::gen;
    use ft_dense::level2::gemv;
    use ft_dense::Trans;

    fn eig_residual(a: &Matrix, lambda: f64, v: &[f64]) -> f64 {
        let n = a.rows();
        let mut av = vec![0.0; n];
        gemv(Trans::No, n, n, 1.0, a.as_slice(), n, v, 0.0, &mut av);
        av.iter().zip(v).map(|(x, y)| (x - lambda * y).abs()).fold(0.0, f64::max)
    }

    #[test]
    fn shifted_solve_exact_on_triangular() {
        // Upper triangular H, λ = 0 → plain triangular solve.
        let h = Matrix::from_rows(&[&[2.0, 1.0, 0.0], &[0.0, 3.0, 1.0], &[0.0, 0.0, 4.0]]);
        let mut b = vec![5.0, 10.0, 8.0];
        solve_shifted_hessenberg(&h, 0.0, &mut b);
        // x = [ (5 - x2)/2 , (10 - x3)/3, 2 ] = [1.5+... compute: x3=2, x2=(10-2)/3=8/3, x1=(5-8/3)/2=7/6
        assert!((b[2] - 2.0).abs() < 1e-14);
        assert!((b[1] - 8.0 / 3.0).abs() < 1e-14);
        assert!((b[0] - 7.0 / 6.0).abs() < 1e-14);
    }

    #[test]
    fn eigenvector_of_diagonal_hessenberg() {
        let h = Matrix::from_rows(&[&[3.0, 1.0, 0.5], &[0.0, 1.0, 0.2], &[0.0, 0.0, -2.0]]);
        for lambda in [3.0, 1.0, -2.0] {
            let v = hessenberg_eigenvector(&h, lambda).unwrap();
            assert!(eig_residual(&h, lambda, &v) < 1e-10, "λ={lambda}");
            assert!((nrm2(&v) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn pagerank_vector_matches_power_iteration() {
        let n = 60;
        let alpha = 0.85;
        let g = gen::google_matrix(n, alpha, 4, 11);

        // Inverse iteration through the Hessenberg pipeline.
        let v = eigenvector(&g, 1.0, 8).unwrap();
        let s: f64 = v.iter().sum();
        let pr: Vec<f64> = v.iter().map(|x| x / s).collect();

        // Reference: plain power iteration.
        let mut p = vec![1.0 / n as f64; n];
        for _ in 0..500 {
            let mut np = vec![0.0; n];
            gemv(Trans::No, n, n, 1.0, g.as_slice(), n, &p, 0.0, &mut np);
            let s: f64 = np.iter().sum();
            for x in np.iter_mut() {
                *x /= s;
            }
            p = np;
        }
        let d: f64 = pr.iter().zip(&p).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
        assert!(d < 1e-9, "PageRank mismatch {d}");
        assert!(pr.iter().all(|&x| x > 0.0), "Perron vector must be positive");
    }

    #[test]
    fn eigenvector_of_random_matrix_real_eigenvalue() {
        // Take a real eigenvalue computed by hqr and reproduce its vector.
        let a = gen::uniform(40, 40, 19);
        let eigs = crate::eig::eigenvalues(&a, 8).unwrap();
        let lam = eigs
            .iter()
            .filter(|e| e.im == 0.0)
            .max_by(|x, y| x.re.abs().total_cmp(&y.re.abs()))
            .expect("a real eigenvalue exists")
            .re;
        let v = eigenvector(&a, lam, 8).unwrap();
        assert!(eig_residual(&a, lam, &v) < 1e-8);
    }

    #[test]
    fn rejects_non_hessenberg() {
        let mut a = Matrix::zeros(3, 3);
        a[(2, 0)] = 1.0;
        assert_eq!(hessenberg_eigenvector(&a, 1.0), Err(EigVecError::NotHessenberg));
    }
}
