//! Shared-memory Hessenberg reduction: `A = Q·H·Qᵀ`.
//!
//! Three routines mirroring LAPACK:
//!
//! * [`gehd2`] — the unblocked Level-2 reduction (paper §3.3). Used as the
//!   correctness oracle and for trailing remainders of the blocked code.
//! * [`lahr2`] — the panel kernel: reduces `nb` columns and accumulates the
//!   WY factors `V`, `T` and `Y = A·V·T` needed by the blocked updates
//!   (paper §3.4, Eq. 1).
//! * [`gehrd`] — the blocked reduction (Algorithm 1 of the paper): per panel,
//!   `lahr2`, then the right update `A ← A − Y·Vᵀ` (a GEMM) and the left
//!   update `A ← A − V·Tᵀ·Vᵀ·A` (a LARFB).
//!
//! Reflectors are stored below the first subdiagonal of `A` (LAPACK
//! convention); `tau[c]` is the scalar of the reflector that annihilates
//! column `c` below the subdiagonal. [`orghr`] assembles the orthogonal `Q`,
//! and [`extract_h`] the Hessenberg `H`.
//!
//! All indices are 0-based: the reflector for column `c` has its implicit
//! unit at row `c + 1` and acts on rows `c+1..n`.

use crate::householder::{larf_left, larf_right, larfb, larfg};
use ft_dense::level1::{axpy, scal};
use ft_dense::level2::{gemv, trmv};
use ft_dense::level3::{gemm, trmm};
use ft_dense::{Diag, Matrix, Side, Trans, UpLo};

/// Default panel width used by [`gehrd`] when callers have no preference.
pub const DEFAULT_NB: usize = 32;

/// Unblocked Hessenberg reduction of the full matrix (LAPACK `dgehd2`).
///
/// On exit the upper triangle and first subdiagonal of `a` hold `H`; the
/// reflectors are stored below the first subdiagonal; `tau` (length ≥ n−1,
/// or empty for n ≤ 1) holds the reflector scalars.
pub fn gehd2(a: &mut Matrix, tau: &mut [f64]) {
    gehd2_range(a, 0, tau);
}

/// Unblocked reduction of columns `k0..n−2` assuming columns `0..k0` are
/// already reduced (used for the remainder block of [`gehrd`]).
pub fn gehd2_range(a: &mut Matrix, k0: usize, tau: &mut [f64]) {
    let n = a.rows();
    assert_eq!(a.cols(), n, "gehd2: matrix must be square");
    if n > 1 {
        assert!(tau.len() >= n - 1, "gehd2: tau too short");
    }
    let lda = n;
    for c in k0..n.saturating_sub(2) {
        // Generate the reflector annihilating A(c+2..n, c).
        let (tau_c, beta) = {
            let col = a.col_mut(c);
            let (head, tail) = col[c + 1..].split_at_mut(1);
            let t = larfg(&mut head[0], tail);
            (t, head[0])
        };
        tau[c] = tau_c;
        a[(c + 1, c)] = 1.0;
        let v: Vec<f64> = (c + 1..n).map(|i| a[(i, c)]).collect();

        // Similarity transform: A ← H·A·H (H symmetric).
        {
            // Right: A(0..n, c+1..n) ← A(0..n, c+1..n)·H
            let buf = a.as_mut_slice();
            larf_right(tau_c, &v, n, n - c - 1, &mut buf[(c + 1) * lda..], lda);
            // Left: A(c+1..n, c+1..n) ← H·A(c+1..n, c+1..n)
            larf_left(tau_c, &v, n - c - 1, n - c - 1, &mut buf[(c + 1) + (c + 1) * lda..], lda);
        }
        a[(c + 1, c)] = beta;
    }
}

/// Panel kernel (LAPACK `dlahr2`): reduce panel columns `k..k+nb` of the
/// `n×n` matrix `a` in place and accumulate the blocked factors.
///
/// On exit:
/// * the panel columns of `a` hold the reduced Hessenberg entries on and
///   above the subdiagonal and the reflectors `V` below (reflector `j`'s
///   unit at row `k+j+1` is stored *explicitly restored* to the subdiagonal
///   value; use the offsets documented in [`gehrd`] when reading `V`);
/// * `tau[0..nb]` holds the reflector scalars;
/// * `t` (`nb×nb`) holds the upper triangular WY factor `T`;
/// * `y` (`n×nb`) holds `Y = Â·V·T` where `Â` is the matrix state at panel
///   entry (full height: rows `0..n`).
///
/// Requires `k + nb + 1 < n` (the last reflector needs a nonempty tail) —
/// callers route smaller remainders to [`gehd2_range`].
pub fn lahr2(a: &mut Matrix, k: usize, nb: usize, tau: &mut [f64], t: &mut Matrix, y: &mut Matrix) {
    let n = a.rows();
    assert_eq!(a.cols(), n);
    assert!(nb >= 1);
    assert!(k + nb + 1 < n, "lahr2: panel does not fit (k={k}, nb={nb}, n={n})");
    assert!(tau.len() >= nb);
    assert!(t.rows() >= nb && t.cols() >= nb);
    assert!(y.rows() >= n && y.cols() >= nb);
    let lda = n;
    let ldt = t.rows();
    let ldy = y.rows();

    let mut ei = 0.0f64;
    for j in 0..nb {
        let c = k + j; // global column being reduced
        let u = c + 1; // unit row of its reflector

        if j > 0 {
            // ---- Update column c with the j previous reflectors ----------
            // Right update: A(k+1..n, c) −= Y(k+1..n, 0..j) · V(k+j, 0..j)ᵀ.
            // Row k+j of V: entry l is stored at a(k+j, k+l); the entry for
            // l = j−1 is the implicit unit, still physically 1 here.
            let vrow: Vec<f64> = (0..j).map(|l| a[(k + j, k + l)]).collect();
            {
                let (ydone, _) = y.as_slice().split_at(j * ldy + ldy);
                let bcol = &mut a.as_mut_slice()[c * lda + (k + 1)..c * lda + n];
                gemv(Trans::No, n - k - 1, j, -1.0, &ydone[k + 1..], ldy, &vrow, 1.0, bcol);
            }

            // Left update: b ← b − V·Tᵀ·Vᵀ·b where b = A(k+1..n, c) and
            // V = reflector columns 0..j (rows k+1..n). Split
            // V = [V1 (j×j unit lower-tri, rows k+1..=k+j); V2 (below)].
            {
                let (vpart, ccol) = a.as_mut_slice().split_at_mut(c * lda);
                let v1 = &vpart[k * lda + (k + 1)..]; // V1 at (k+1, k), lda
                let v2 = &vpart[k * lda + (k + j + 1)..]; // V2 at (k+j+1, k), lda
                let b = &mut ccol[k + 1..n]; // rows k+1..n of column c
                let (b1, b2) = b.split_at_mut(j); // rows k+1..=k+j | k+j+1..n

                // w = V1ᵀ·b1
                let mut w = b1.to_vec();
                trmv(UpLo::Lower, Trans::Yes, Diag::Unit, j, v1, lda, &mut w);
                // w += V2ᵀ·b2
                gemv(Trans::Yes, n - k - j - 1, j, 1.0, v2, lda, b2, 1.0, &mut w);
                // w ← Tᵀ·w
                trmv(UpLo::Upper, Trans::Yes, Diag::NonUnit, j, t.as_slice(), ldt, &mut w);
                // b2 −= V2·w
                gemv(Trans::No, n - k - j - 1, j, -1.0, v2, lda, &w, 1.0, b2);
                // b1 −= V1·w
                trmv(UpLo::Lower, Trans::No, Diag::Unit, j, v1, lda, &mut w);
                axpy(-1.0, &w, b1);
            }
            // Restore the previous reflector's unit position to its
            // subdiagonal value β (it was 1 while serving as V).
            a[(k + j, c - 1)] = ei;
        }

        // ---- Generate the reflector for column c -------------------------
        let tau_j = {
            let col = a.col_mut(c);
            let (head, tail) = col[u..].split_at_mut(1);
            larfg(&mut head[0], tail)
        };
        tau[j] = tau_j;
        ei = a[(u, c)];
        a[(u, c)] = 1.0;

        // ---- Y(k+1..n, j) = A(k+1..n, c+1..n)·v, v = A(u..n, c) ----------
        {
            let abuf = a.as_slice();
            let trailing = &abuf[(c + 1) * lda + (k + 1)..];
            let v = &abuf[c * lda + u..c * lda + n];
            let ycol = &mut y.as_mut_slice()[j * ldy + (k + 1)..j * ldy + n];
            gemv(Trans::No, n - k - 1, n - c - 1, 1.0, trailing, lda, v, 0.0, ycol);
        }

        // ---- tcol = V(u..n, 0..j)ᵀ·v (v is zero above its unit) ----------
        let mut tcol = vec![0.0; j];
        {
            let abuf = a.as_slice();
            let vprev = &abuf[k * lda + u..];
            let v = &abuf[c * lda + u..c * lda + n];
            gemv(Trans::Yes, n - u, j, 1.0, vprev, lda, v, 0.0, &mut tcol);
        }

        // ---- Y(:, j) −= Y(:, 0..j)·tcol ; Y(:, j) ·= τⱼ -------------------
        {
            let (ydone, ycur) = y.as_mut_slice().split_at_mut(j * ldy);
            let ycol = &mut ycur[k + 1..n];
            if j > 0 {
                gemv(Trans::No, n - k - 1, j, -1.0, &ydone[k + 1..], ldy, &tcol, 1.0, ycol);
            }
            scal(tau_j, ycol);
        }

        // ---- T(0..j, j) -----------------------------------------------
        scal(-tau_j, &mut tcol);
        trmv(UpLo::Upper, Trans::No, Diag::NonUnit, j, t.as_slice(), ldt, &mut tcol);
        for (l, v) in tcol.iter().enumerate() {
            t[(l, j)] = *v;
        }
        t[(j, j)] = tau_j;
    }
    // Restore the last reflector's unit position.
    a[(k + nb, k + nb - 1)] = ei;

    // ---- Top part of Y: Y(0..=k, :) = A(0..=k, k+1..n)·V·T --------------
    // = A(0..=k, k+1..=k+nb)·V1 + A(0..=k, k+nb+1..n)·V2, then ·T.
    for jj in 0..nb {
        for i in 0..=k {
            y[(i, jj)] = a[(i, k + 1 + jj)];
        }
    }
    {
        let abuf = a.as_slice();
        let ybuf = y.as_mut_slice();
        let v1 = &abuf[k * lda + (k + 1)..]; // nb×nb unit lower tri at (k+1, k)
        trmm(Side::Right, UpLo::Lower, Trans::No, Diag::Unit, k + 1, nb, 1.0, v1, lda, ybuf, ldy);
        if n > k + nb + 1 {
            let atop = &abuf[(k + nb + 1) * lda..]; // A(0.., k+nb+1..)
            let v2 = &abuf[k * lda + (k + nb + 1)..]; // V rows k+nb+1..n
            gemm(Trans::No, Trans::No, k + 1, nb, n - k - nb - 1, 1.0, atop, lda, v2, lda, 1.0, ybuf, ldy);
        }
        trmm(Side::Right, UpLo::Upper, Trans::No, Diag::NonUnit, k + 1, nb, 1.0, t.as_slice(), ldt, ybuf, ldy);
    }
    // NOTE: a(k+nb, k+nb-1) currently holds β (restored above). gehrd's
    // right update needs it set to 1 again; it does so itself around the
    // GEMM, exactly like LAPACK.
}

/// Blocked Hessenberg reduction (LAPACK `dgehrd`; Algorithm 1 of the paper).
///
/// Reduces `a` in place with panel width `nb`. Reflector storage and `tau`
/// conventions match [`gehd2`], and the two routines produce the same
/// factorization up to roundoff.
pub fn gehrd(a: &mut Matrix, nb: usize, tau: &mut [f64]) {
    let n = a.rows();
    assert_eq!(a.cols(), n, "gehrd: matrix must be square");
    if n > 1 {
        assert!(tau.len() >= n - 1, "gehrd: tau too short");
    }
    let nb = nb.max(1);
    let lda = n;
    if n <= 2 || nb == 1 {
        gehd2(a, tau);
        return;
    }

    let mut t = Matrix::zeros(nb, nb);
    let mut y = Matrix::zeros(n, nb);
    let mut k = 0;
    while k + nb + 1 < n {
        lahr2(a, k, nb, &mut tau[k..k + nb], &mut t, &mut y);

        // ---- Right update of trailing columns: A(:, k+nb..n) −= Y·V_bᵀ ----
        // V_b = V rows k+nb..n (row r of V belongs to trailing column r).
        let ei = a[(k + nb, k + nb - 1)];
        a[(k + nb, k + nb - 1)] = 1.0;
        {
            let (vpart, cpart) = a.as_mut_slice().split_at_mut((k + nb) * lda);
            let vb = &vpart[k * lda + (k + nb)..];
            gemm(Trans::No, Trans::Yes, n, n - k - nb, nb, -1.0, y.as_slice(), y.rows(), vb, lda, 1.0, cpart, lda);
        }
        a[(k + nb, k + nb - 1)] = ei;

        // ---- Top rows of the within-panel columns -------------------------
        // A(0..=k, k+1..k+nb) −= Y(0..=k, 0..nb−1)·V1′ᵀ where V1′ is the
        // (nb−1)×(nb−1) unit lower triangle of V at rows k+1..k+nb−1.
        if nb > 1 {
            let mut w = Matrix::from_fn(k + 1, nb - 1, |i, jj| y[(i, jj)]);
            {
                let v1p = &a.as_slice()[k * lda + (k + 1)..].to_vec();
                trmm(
                    Side::Right,
                    UpLo::Lower,
                    Trans::Yes,
                    Diag::Unit,
                    k + 1,
                    nb - 1,
                    1.0,
                    v1p,
                    lda,
                    w.as_mut_slice(),
                    k + 1,
                );
            }
            for jj in 0..nb - 1 {
                for i in 0..=k {
                    a[(i, k + 1 + jj)] -= w[(i, jj)];
                }
            }
        }

        // ---- Left update: A(k+1..n, k+nb..n) ← Qᵀ·A(k+1..n, k+nb..n) ------
        {
            let (vpart, cpart) = a.as_mut_slice().split_at_mut((k + nb) * lda);
            let v = &vpart[k * lda + (k + 1)..];
            larfb(
                Side::Left,
                Trans::Yes,
                n - k - 1,
                n - k - nb,
                nb,
                v,
                lda,
                t.as_slice(),
                t.rows(),
                &mut cpart[k + 1..],
                lda,
            );
        }

        k += nb;
    }
    // Remainder: unblocked.
    gehd2_range(a, k, tau);
}

/// Extract the Hessenberg matrix `H` from the output of [`gehrd`]/[`gehd2`]
/// (zeroing the stored reflectors below the first subdiagonal).
pub fn extract_h(a: &Matrix) -> Matrix {
    let n = a.rows();
    Matrix::from_fn(n, n, |i, j| if i > j + 1 { 0.0 } else { a[(i, j)] })
}

/// Assemble the orthogonal factor `Q = H₀·H₁⋯H_{n−3}` from the reflectors
/// stored by [`gehrd`]/[`gehd2`] (LAPACK `dorghr`).
pub fn orghr(a: &Matrix, tau: &[f64]) -> Matrix {
    let n = a.rows();
    let mut q = Matrix::identity(n);
    if n < 3 {
        return q;
    }
    let ldq = n;
    // Apply reflectors in reverse; columns 0..=c of Q stay identity while
    // reflector c is applied, so only the trailing block is touched.
    for c in (0..n - 2).rev() {
        if tau[c] == 0.0 {
            continue;
        }
        let mut v = vec![0.0; n - c - 1];
        v[0] = 1.0;
        for (idx, i) in (c + 2..n).enumerate() {
            v[idx + 1] = a[(i, c)];
        }
        let qbuf = q.as_mut_slice();
        larf_left(tau[c], &v, n - c - 1, n - c - 1, &mut qbuf[(c + 1) + (c + 1) * ldq..], ldq);
    }
    q
}

/// Convenience: reduce a copy of `a`, returning `(H, Q)` with `A ≈ Q·H·Qᵀ`.
///
/// ```
/// use ft_dense::gen::uniform;
/// use ft_lapack::{hessenberg, hessenberg_residual, is_hessenberg};
///
/// let a = uniform(32, 32, 7);
/// let (h, q) = hessenberg(&a, 8);
/// assert!(is_hessenberg(&h));
/// assert!(hessenberg_residual(&a, &h, &q) < 3.0); // the paper's r_t
/// ```
pub fn hessenberg(a: &Matrix, nb: usize) -> (Matrix, Matrix) {
    let n = a.rows();
    let mut work = a.clone();
    let mut tau = vec![0.0; n.saturating_sub(1)];
    gehrd(&mut work, nb, &mut tau);
    (extract_h(&work), orghr(&work, &tau))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::residual::{hessenberg_residual, is_hessenberg, orthogonality_residual};
    use ft_dense::gen::uniform;

    fn check_factorization(a0: &Matrix, afact: &Matrix, tau: &[f64], tol: f64) {
        let h = extract_h(afact);
        assert!(is_hessenberg(&h));
        let q = orghr(afact, tau);
        let orth = orthogonality_residual(&q);
        assert!(orth < tol, "Q not orthogonal: {orth}");
        let r = hessenberg_residual(a0, &h, &q);
        assert!(r < tol, "residual too large: {r}");
    }

    #[test]
    fn gehd2_reduces_random_matrices() {
        for n in [1usize, 2, 3, 4, 7, 16, 33] {
            let a0 = uniform(n, n, n as u64);
            let mut a = a0.clone();
            let mut tau = vec![0.0; n.saturating_sub(1)];
            gehd2(&mut a, &mut tau);
            check_factorization(&a0, &a, &tau, 10.0);
        }
    }

    #[test]
    fn gehrd_matches_gehd2() {
        for n in [5usize, 12, 29, 64] {
            for nb in [1usize, 2, 4, 8, 100] {
                let a0 = uniform(n, n, 7 + n as u64);
                let mut a1 = a0.clone();
                let mut tau1 = vec![0.0; n - 1];
                gehd2(&mut a1, &mut tau1);
                let mut a2 = a0.clone();
                let mut tau2 = vec![0.0; n - 1];
                gehrd(&mut a2, nb, &mut tau2);
                check_factorization(&a0, &a2, &tau2, 10.0);
                // Same factorization up to roundoff (identical reflector
                // sign conventions make H unique here).
                let h1 = extract_h(&a1);
                let h2 = extract_h(&a2);
                let d = h1.max_abs_diff(&h2);
                assert!(d < 1e-10, "n={n} nb={nb}: H mismatch {d}");
            }
        }
    }

    #[test]
    fn lahr2_consistent_with_blocked_update() {
        // One panel of lahr2 + manual updates must equal gehd2 on the same
        // columns. Exercised indirectly by gehrd_matches_gehd2; here we
        // additionally validate the Y identity: Y = Â·V·T.
        let n = 20;
        let nb = 4;
        let a0 = uniform(n, n, 99);
        let mut a = a0.clone();
        let mut tau = vec![0.0; nb];
        let mut t = Matrix::zeros(nb, nb);
        let mut y = Matrix::zeros(n, nb);
        lahr2(&mut a, 0, nb, &mut tau, &mut t, &mut y);

        // Materialize V (unit at row j+1 for panel k=0).
        let mut v = Matrix::zeros(n, nb);
        for j in 0..nb {
            v[(j + 1, j)] = 1.0;
            for i in j + 2..n {
                v[(i, j)] = a[(i, j)];
            }
        }
        // Y should equal A0·V·T.
        let mut av = Matrix::zeros(n, nb);
        ft_dense::level3::gemm(Trans::No, Trans::No, n, nb, n, 1.0, a0.as_slice(), n, v.as_slice(), n, 0.0, av.as_mut_slice(), n);
        let mut avt = Matrix::zeros(n, nb);
        ft_dense::level3::gemm(
            Trans::No,
            Trans::No,
            n,
            nb,
            nb,
            1.0,
            av.as_slice(),
            n,
            t.as_slice(),
            nb,
            0.0,
            avt.as_mut_slice(),
            n,
        );
        let d = avt.max_abs_diff(&y);
        assert!(d < 1e-12, "Y ≠ A·V·T: {d}");
    }

    #[test]
    fn hessenberg_convenience() {
        let a = uniform(24, 24, 5);
        let (h, q) = hessenberg(&a, 6);
        assert!(is_hessenberg(&h));
        assert!(hessenberg_residual(&a, &h, &q) < 10.0);
    }

    #[test]
    fn already_hessenberg_is_fixed_point() {
        // Reducing an upper Hessenberg matrix must leave it essentially
        // unchanged (all reflectors are identity).
        let n = 10;
        let a0 = ft_dense::gen::diag_dominant_hessenberg(&(0..n).map(|i| i as f64 + 1.0).collect::<Vec<_>>(), 3);
        let mut a = a0.clone();
        let mut tau = vec![0.0; n - 1];
        gehrd(&mut a, 4, &mut tau);
        assert!(tau.iter().all(|&t| t == 0.0));
        assert!(a.max_abs_diff(&a0) < 1e-14);
    }
}
