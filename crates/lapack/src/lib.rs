//! # ft-lapack — Householder kernels and the Hessenberg reduction
//!
//! Shared-memory LAPACK-style routines built on [`ft_dense`]:
//!
//! * [`householder`] — `larfg` / `larf` / `larft` / `larfb` reflector
//!   kernels (the WY representation, refs [3, 40] of the paper);
//! * [`hessenberg`](mod@hessenberg) — unblocked (`gehd2`) and blocked (`gehrd`) reduction
//!   `A = Q·H·Qᵀ`, the panel kernel `lahr2`, and `orghr` to form `Q`;
//! * [`eig`] — Francis double-shift QR iteration on the Hessenberg form
//!   (the second phase of the dense eigensolver the paper motivates);
//! * [`qr`] — blocked Householder QR (`geqr2`/`geqrf`/`orgqr`), the
//!   sequential oracle for the ABFT framework's second solver;
//! * [`residual`] — the paper's `r∞` residual (§7.3, Table 1) and structure
//!   checks.
//!
//! These routines are the correctness oracles for the distributed versions
//! in `ft-pblas` and `ft-hess`: the distributed reductions must match
//! `gehrd` to roundoff, with or without injected failures.

pub mod eig;
pub mod eigvec;
pub mod hessenberg;
pub mod householder;
pub mod qr;
pub mod residual;

pub use eig::{eigenvalues, hessenberg_eigenvalues, Eigenvalue};
pub use eigvec::{eigenvector, hessenberg_eigenvector, solve_shifted_hessenberg};

/// Index of the largest-magnitude entry (first on ties); helper shared by
/// the eigenvector sign convention. Panics on empty input.
pub fn householder_iamax(x: &[f64]) -> usize {
    ft_dense::level1::iamax(x).expect("nonempty vector")
}
pub use hessenberg::{extract_h, gehd2, gehrd, hessenberg, lahr2, orghr, DEFAULT_NB};
pub use qr::{extract_r, geqr2, geqrf, is_upper_triangular, orgqr, qr_residual};
pub use residual::{hessenberg_residual, is_hessenberg, orthogonality_residual, RESIDUAL_THRESHOLD};
