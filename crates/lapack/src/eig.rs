//! Eigenvalues of a real upper Hessenberg matrix via the implicitly shifted
//! Francis double-shift QR iteration (EISPACK `hqr`; the "second step" of the
//! QR algorithm the paper describes in its introduction).
//!
//! The paper motivates the Hessenberg reduction as the expensive first phase
//! of dense nonsymmetric eigensolvers (spectral clustering, PageRank /
//! eigenvector centrality). This module provides that second phase so the
//! examples can run a complete eigensolver pipeline on top of the
//! fault-tolerant reduction.

use crate::hessenberg::{extract_h, gehrd};
use ft_dense::Matrix;

/// A computed eigenvalue `re + i·im`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Eigenvalue {
    /// Real part.
    pub re: f64,
    /// Imaginary part (0 for real eigenvalues; complex ones come in
    /// conjugate pairs).
    pub im: f64,
}

impl Eigenvalue {
    /// Magnitude `|λ|`.
    pub fn abs(&self) -> f64 {
        f64::hypot(self.re, self.im)
    }
}

/// Eigenvalue iteration failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EigError {
    /// The QR iteration did not converge within the per-eigenvalue iteration
    /// limit (30, as in EISPACK).
    NoConvergence {
        /// Index of the eigenvalue being isolated when iteration stalled.
        at_index: usize,
    },
    /// The input matrix was not upper Hessenberg.
    NotHessenberg,
}

impl std::fmt::Display for EigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EigError::NoConvergence { at_index } => {
                write!(f, "QR iteration failed to converge at eigenvalue index {at_index}")
            }
            EigError::NotHessenberg => write!(f, "input matrix is not upper Hessenberg"),
        }
    }
}

impl std::error::Error for EigError {}

const MAX_ITS: usize = 30;

#[inline]
fn sign(a: f64, b: f64) -> f64 {
    if b >= 0.0 {
        a.abs()
    } else {
        -a.abs()
    }
}

/// Eigenvalues of an upper Hessenberg matrix (destroys a working copy; the
/// input is untouched). Entries strictly below the first subdiagonal must be
/// zero.
#[allow(unused_assignments)] // the Francis sweep reuses p/q/r across loop turns
pub fn hessenberg_eigenvalues(h: &Matrix) -> Result<Vec<Eigenvalue>, EigError> {
    if !crate::residual::is_hessenberg(h) {
        return Err(EigError::NotHessenberg);
    }
    let n = h.rows();
    if n == 0 {
        return Ok(vec![]);
    }
    let mut a = h.clone();
    let mut wr = vec![0.0f64; n];
    let mut wi = vec![0.0f64; n];

    // ‖H‖ restricted to the Hessenberg band, used for the negligibility test.
    let mut anorm = 0.0f64;
    for i in 0..n {
        for j in i.saturating_sub(1)..n {
            anorm += a[(i, j)].abs();
        }
    }
    if anorm == 0.0 {
        return Ok(vec![Eigenvalue { re: 0.0, im: 0.0 }; n]);
    }

    let mut nn: isize = n as isize - 1;
    let mut t = 0.0f64;
    while nn >= 0 {
        let mut its = 0usize;
        'seek: loop {
            // Find a negligible subdiagonal element, splitting the matrix.
            let mut l = nn;
            while l >= 1 {
                let li = l as usize;
                let mut s = a[(li - 1, li - 1)].abs() + a[(li, li)].abs();
                if s == 0.0 {
                    s = anorm;
                }
                if a[(li, li - 1)].abs() + s == s {
                    a[(li, li - 1)] = 0.0;
                    break;
                }
                l -= 1;
            }
            let nu = nn as usize;
            let mut x = a[(nu, nu)];
            if l == nn {
                // One real root found.
                wr[nu] = x + t;
                wi[nu] = 0.0;
                nn -= 1;
                break 'seek;
            }
            let mut y = a[(nu - 1, nu - 1)];
            let mut w = a[(nu, nu - 1)] * a[(nu - 1, nu)];
            if l == nn - 1 {
                // A 2×2 block: two roots (real pair or complex conjugates).
                let p = 0.5 * (y - x);
                let q = p * p + w;
                let mut z = q.abs().sqrt();
                x += t;
                if q >= 0.0 {
                    z = p + sign(z, p);
                    wr[nu - 1] = x + z;
                    wr[nu] = wr[nu - 1];
                    if z != 0.0 {
                        wr[nu] = x - w / z;
                    }
                    wi[nu - 1] = 0.0;
                    wi[nu] = 0.0;
                } else {
                    wr[nu - 1] = x + p;
                    wr[nu] = x + p;
                    wi[nu - 1] = -z;
                    wi[nu] = z;
                }
                nn -= 2;
                break 'seek;
            }
            // No root isolated yet: another double QR sweep.
            if its == MAX_ITS {
                return Err(EigError::NoConvergence { at_index: nu });
            }
            if its == 10 || its == 20 {
                // Exceptional shift.
                t += x;
                for i in 0..=nu {
                    a[(i, i)] -= x;
                }
                let s = a[(nu, nu - 1)].abs() + a[(nu - 1, nu - 2)].abs();
                y = 0.75 * s;
                x = y;
                w = -0.4375 * s * s;
            }
            its += 1;

            // Look for two consecutive small subdiagonal elements.
            let lu = l as usize;
            let mut m = nu - 2;
            let (mut p, mut q, mut r) = (0.0f64, 0.0f64, 0.0f64);
            loop {
                let z = a[(m, m)];
                let rr = x - z;
                let ss = y - z;
                p = (rr * ss - w) / a[(m + 1, m)] + a[(m, m + 1)];
                q = a[(m + 1, m + 1)] - z - rr - ss;
                r = a[(m + 2, m + 1)];
                let s = p.abs() + q.abs() + r.abs();
                p /= s;
                q /= s;
                r /= s;
                if m == lu {
                    break;
                }
                let u = a[(m, m - 1)].abs() * (q.abs() + r.abs());
                let v = p.abs() * (a[(m - 1, m - 1)].abs() + z.abs() + a[(m + 1, m + 1)].abs());
                if u + v == v {
                    break;
                }
                m -= 1;
            }
            for i in m + 2..=nu {
                a[(i, i - 2)] = 0.0;
                if i > m + 2 {
                    a[(i, i - 3)] = 0.0;
                }
            }

            // Double QR step on rows l..=nn, columns l..=nn.
            for k in m..nu {
                if k != m {
                    p = a[(k, k - 1)];
                    q = a[(k + 1, k - 1)];
                    r = if k != nu - 1 { a[(k + 2, k - 1)] } else { 0.0 };
                    x = p.abs() + q.abs() + r.abs();
                    if x != 0.0 {
                        p /= x;
                        q /= x;
                        r /= x;
                    }
                }
                let s = sign((p * p + q * q + r * r).sqrt(), p);
                if s == 0.0 {
                    continue;
                }
                if k == m {
                    if lu != m {
                        a[(k, k - 1)] = -a[(k, k - 1)];
                    }
                } else {
                    a[(k, k - 1)] = -s * x;
                }
                p += s;
                x = p / s;
                y = q / s;
                let z = r / s;
                q /= p;
                r /= p;
                // Row modification.
                for j in k..=nu {
                    let mut pp = a[(k, j)] + q * a[(k + 1, j)];
                    if k != nu - 1 {
                        pp += r * a[(k + 2, j)];
                        a[(k + 2, j)] -= pp * z;
                    }
                    a[(k + 1, j)] -= pp * y;
                    a[(k, j)] -= pp * x;
                }
                // Column modification.
                let mmin = nu.min(k + 3);
                for i in lu..=mmin {
                    let mut pp = x * a[(i, k)] + y * a[(i, k + 1)];
                    if k != nu - 1 {
                        pp += z * a[(i, k + 2)];
                        a[(i, k + 2)] -= pp * r;
                    }
                    a[(i, k + 1)] -= pp * q;
                    a[(i, k)] -= pp;
                }
            }
        }
    }

    Ok(wr.into_iter().zip(wi).map(|(re, im)| Eigenvalue { re, im }).collect())
}

/// Eigenvalues of a general square matrix: blocked Hessenberg reduction
/// followed by the QR iteration. `nb` is the reduction panel width.
pub fn eigenvalues(a: &Matrix, nb: usize) -> Result<Vec<Eigenvalue>, EigError> {
    let n = a.rows();
    assert_eq!(a.cols(), n, "eigenvalues: matrix must be square");
    let mut work = a.clone();
    let mut tau = vec![0.0; n.saturating_sub(1)];
    gehrd(&mut work, nb, &mut tau);
    hessenberg_eigenvalues(&extract_h(&work))
}

/// The eigenvalue of the largest magnitude (`None` for an empty matrix).
pub fn dominant_eigenvalue(eigs: &[Eigenvalue]) -> Option<Eigenvalue> {
    eigs.iter().copied().max_by(|a, b| a.abs().total_cmp(&b.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_dense::gen;

    fn sorted_res(mut v: Vec<f64>) -> Vec<f64> {
        v.sort_by(f64::total_cmp);
        v
    }

    #[test]
    fn diagonal_matrix() {
        let d = [3.0, -1.0, 7.0, 0.5];
        let a = Matrix::from_fn(4, 4, |i, j| if i == j { d[i] } else { 0.0 });
        let eigs = hessenberg_eigenvalues(&a).unwrap();
        assert!(eigs.iter().all(|e| e.im == 0.0));
        let got = sorted_res(eigs.iter().map(|e| e.re).collect());
        assert_eq!(got, vec![-1.0, 0.5, 3.0, 7.0]);
    }

    #[test]
    fn rotation_block_gives_complex_pair() {
        // [[0, -1], [1, 0]] has eigenvalues ±i.
        let a = Matrix::from_rows(&[&[0.0, -1.0], &[1.0, 0.0]]);
        let eigs = hessenberg_eigenvalues(&a).unwrap();
        let mut ims: Vec<f64> = eigs.iter().map(|e| e.im).collect();
        ims.sort_by(f64::total_cmp);
        assert!((ims[0] + 1.0).abs() < 1e-12);
        assert!((ims[1] - 1.0).abs() < 1e-12);
        assert!(eigs.iter().all(|e| e.re.abs() < 1e-12));
    }

    #[test]
    fn trace_identities_on_random_matrix() {
        // Σλ = tr(A) and Σλ² = tr(A²) hold for the full spectrum.
        let n = 30;
        let a = gen::uniform(n, n, 11);
        let eigs = eigenvalues(&a, 8).unwrap();
        assert_eq!(eigs.len(), n);

        let trace: f64 = (0..n).map(|i| a[(i, i)]).sum();
        let sum_re: f64 = eigs.iter().map(|e| e.re).sum();
        let sum_im: f64 = eigs.iter().map(|e| e.im).sum();
        assert!((sum_re - trace).abs() < 1e-9, "Σλ={sum_re} tr={trace}");
        assert!(sum_im.abs() < 1e-9);

        let tr_a2: f64 = (0..n).map(|i| (0..n).map(|k| a[(i, k)] * a[(k, i)]).sum::<f64>()).sum();
        // λ² = (re² − im²) + 2·re·im·i ; imaginary parts cancel in pairs.
        let sum_l2: f64 = eigs.iter().map(|e| e.re * e.re - e.im * e.im).sum();
        assert!((sum_l2 - tr_a2).abs() < 1e-8, "Σλ²={sum_l2} trA²={tr_a2}");
    }

    #[test]
    fn complex_pairs_are_conjugate() {
        let a = gen::uniform(25, 25, 4);
        let eigs = eigenvalues(&a, 4).unwrap();
        let mut ims: Vec<f64> = eigs.iter().map(|e| e.im).filter(|v| *v != 0.0).collect();
        ims.sort_by(f64::total_cmp);
        // pairs: sorted ims must be symmetric around zero
        let k = ims.len();
        for i in 0..k / 2 {
            assert!((ims[i] + ims[k - 1 - i]).abs() < 1e-9);
        }
        assert_eq!(k % 2, 0);
    }

    #[test]
    fn google_matrix_dominant_eigenvalue_is_one() {
        let g = gen::google_matrix(40, 0.85, 4, 9);
        let eigs = eigenvalues(&g, 8).unwrap();
        let dom = dominant_eigenvalue(&eigs).unwrap();
        assert!((dom.re - 1.0).abs() < 1e-8, "dominant {dom:?}");
        assert!(dom.im.abs() < 1e-8);
    }

    #[test]
    fn rejects_non_hessenberg() {
        let mut a = Matrix::zeros(3, 3);
        a[(2, 0)] = 1.0;
        assert_eq!(hessenberg_eigenvalues(&a), Err(EigError::NotHessenberg));
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(hessenberg_eigenvalues(&Matrix::zeros(0, 0)).unwrap().len(), 0);
        let a = Matrix::from_rows(&[&[5.0]]);
        let e = hessenberg_eigenvalues(&a).unwrap();
        assert_eq!(e[0], Eigenvalue { re: 5.0, im: 0.0 });
    }
}
