//! Factorization quality checks.
//!
//! The paper (Section 7.3) verifies the reduction with the scaled residual
//!
//! ```text
//! r∞ = ‖A − U·H·Uᵀ‖∞ / (‖A‖∞ · N · ε)
//! ```
//!
//! and considers it correct when `r∞ < r_t = 3`. Table 1 compares this
//! residual between the fault-tolerant run (with one failure + recovery) and
//! the fault-free ScaLAPACK run; `table1` in the bench crate regenerates it
//! with these functions.

use ft_dense::level3::gemm;
use ft_dense::norms::inf_norm;
use ft_dense::{Matrix, Trans, EPS};

/// The residual threshold `r_t` used by the paper ("we consider the
/// reduction correct if the residual r∞ is smaller than the threshold
/// r_t = 3").
pub const RESIDUAL_THRESHOLD: f64 = 3.0;

/// Scaled factorization residual `r∞ = ‖A − Q·H·Qᵀ‖∞ / (‖A‖∞·N·ε)`.
pub fn hessenberg_residual(a: &Matrix, h: &Matrix, q: &Matrix) -> f64 {
    let n = a.rows();
    assert!(n > 0, "empty matrix");
    assert_eq!(a.cols(), n);
    assert_eq!((h.rows(), h.cols()), (n, n));
    assert_eq!((q.rows(), q.cols()), (n, n));
    // R = A − Q·H·Qᵀ
    let mut qh = Matrix::zeros(n, n);
    gemm(Trans::No, Trans::No, n, n, n, 1.0, q.as_slice(), n, h.as_slice(), n, 0.0, qh.as_mut_slice(), n);
    let mut r = a.clone();
    gemm(Trans::No, Trans::Yes, n, n, n, -1.0, qh.as_slice(), n, q.as_slice(), n, 1.0, r.as_mut_slice(), n);
    let na = inf_norm(a);
    if na == 0.0 {
        return 0.0;
    }
    inf_norm(&r) / (na * n as f64 * EPS)
}

/// Scaled orthogonality residual `‖QᵀQ − I‖∞ / (N·ε)`.
pub fn orthogonality_residual(q: &Matrix) -> f64 {
    let n = q.rows();
    assert_eq!(q.cols(), n);
    if n == 0 {
        return 0.0;
    }
    let mut qtq = Matrix::identity(n);
    gemm(Trans::Yes, Trans::No, n, n, n, 1.0, q.as_slice(), n, q.as_slice(), n, -1.0, qtq.as_mut_slice(), n);
    inf_norm(&qtq) / (n as f64 * EPS)
}

/// `true` if every entry strictly below the first subdiagonal is exactly 0.
pub fn is_hessenberg(h: &Matrix) -> bool {
    let n = h.rows();
    for j in 0..h.cols() {
        for i in j + 2..n {
            if h[(i, j)] != 0.0 {
                return false;
            }
        }
    }
    true
}

/// Largest magnitude strictly below the first subdiagonal (0 for an exact
/// Hessenberg matrix) — useful to assess "approximately Hessenberg" results.
pub fn below_subdiagonal_max(h: &Matrix) -> f64 {
    let n = h.rows();
    let mut m = 0.0f64;
    for j in 0..h.cols() {
        for i in j + 2..n {
            m = m.max(h[(i, j)].abs());
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_factorization_has_zero_residual() {
        let a = Matrix::identity(5);
        let r = hessenberg_residual(&a, &a, &Matrix::identity(5));
        assert_eq!(r, 0.0);
        assert_eq!(orthogonality_residual(&Matrix::identity(5)), 0.0);
    }

    #[test]
    fn perturbed_factorization_detected() {
        let a = Matrix::identity(4);
        let mut h = a.clone();
        h[(0, 0)] = 2.0; // wrong H
        let r = hessenberg_residual(&a, &h, &Matrix::identity(4));
        assert!(r > RESIDUAL_THRESHOLD);
    }

    #[test]
    fn hessenberg_structure_checks() {
        let mut h = Matrix::zeros(4, 4);
        h[(1, 0)] = 1.0;
        h[(3, 2)] = 2.0;
        assert!(is_hessenberg(&h));
        h[(3, 0)] = 1e-30;
        assert!(!is_hessenberg(&h));
        assert_eq!(below_subdiagonal_max(&h), 1e-30);
    }

    #[test]
    fn non_orthogonal_detected() {
        let mut q = Matrix::identity(3);
        q[(0, 0)] = 2.0;
        assert!(orthogonality_residual(&q) > 1e10);
    }
}
