//! Householder reflector kernels (LAPACK `dlarfg`/`dlarf`/`dlarft`/`dlarfb`
//! equivalents).
//!
//! A reflector is `H = I − τ·v·vᵀ` with `v[0] = 1`. A block of `k` reflectors
//! in the compact WY representation (Bischof & Van Loan; Schreiber & Van
//! Loan — refs [3, 40] of the paper) is `Q = H₀H₁⋯H_{k−1} = I − V·T·Vᵀ`
//! where `V` is unit lower trapezoidal (column `j` has an implicit 1 at row
//! `j` and zeros above) and `T` is `k×k` upper triangular.

use ft_dense::level1::{axpy, nrm2, scal};
use ft_dense::level2::{gemv, ger, trmv};
use ft_dense::level3::{gemm, trmm};
use ft_dense::{Diag, Side, Trans, UpLo};

/// Generate an elementary reflector `H = I − τ·v·vᵀ` such that
/// `H·[α; x] = [β; 0]` with `v = [1; x']` (LAPACK `dlarfg`).
///
/// On exit `alpha` holds `β` and `x` holds the tail of `v`; returns `τ`.
/// `τ = 0` (identity) when `x` is already zero.
pub fn larfg(alpha: &mut f64, x: &mut [f64]) -> f64 {
    let xnorm = nrm2(x);
    if xnorm == 0.0 {
        return 0.0;
    }
    let beta = -f64::hypot(*alpha, xnorm) * (*alpha).signum();
    let tau = (beta - *alpha) / beta;
    scal(1.0 / (*alpha - beta), x);
    *alpha = beta;
    tau
}

/// Apply `H = I − τ·v·vᵀ` from the **left**: `C ← H·C` where `C` is `m×n`
/// (leading dimension `ldc`) and `v` has length `m` (the leading 1 stored
/// explicitly by the caller).
pub fn larf_left(tau: f64, v: &[f64], m: usize, n: usize, c: &mut [f64], ldc: usize) {
    if tau == 0.0 || m == 0 || n == 0 {
        return;
    }
    assert_eq!(v.len(), m, "larf_left: v length");
    // w = Cᵀ·v ; C ← C − τ·v·wᵀ
    let mut w = vec![0.0; n];
    gemv(Trans::Yes, m, n, 1.0, c, ldc, v, 0.0, &mut w);
    ger(m, n, -tau, v, &w, c, ldc);
}

/// Apply `H = I − τ·v·vᵀ` from the **right**: `C ← C·H` where `C` is `m×n`
/// and `v` has length `n`.
pub fn larf_right(tau: f64, v: &[f64], m: usize, n: usize, c: &mut [f64], ldc: usize) {
    if tau == 0.0 || m == 0 || n == 0 {
        return;
    }
    assert_eq!(v.len(), n, "larf_right: v length");
    // w = C·v ; C ← C − τ·w·vᵀ
    let mut w = vec![0.0; m];
    gemv(Trans::No, m, n, 1.0, c, ldc, v, 0.0, &mut w);
    ger(m, n, -tau, &w, v, c, ldc);
}

/// Form the upper triangular factor `T` of the compact WY representation
/// (`dlarft` with `DIRECT='F'`, `STOREV='C'`).
///
/// `v` is `m×k` (leading dimension `ldv`) storing the reflectors
/// column-wise with the **implicit** unit diagonal: element `(j, j)` is
/// assumed 1 and elements above it are assumed 0, whatever the buffer holds.
/// `t` is `k×k` (leading dimension `ldt`); only its upper triangle is
/// written.
pub fn larft(m: usize, k: usize, v: &[f64], ldv: usize, tau: &[f64], t: &mut [f64], ldt: usize) {
    assert!(ldv >= m.max(1));
    assert!(ldt >= k.max(1));
    assert_eq!(tau.len(), k);
    for i in 0..k {
        if tau[i] == 0.0 {
            for j in 0..=i {
                t[j + i * ldt] = 0.0;
            }
            continue;
        }
        // t(0..i) = −τᵢ · V(i..m, 0..i)ᵀ · v_i, exploiting v_i = [0…0, 1, tail].
        // Row i of V holds the stored entries of earlier columns (all below
        // their unit), and v_i's unit contributes V(i, j) directly:
        let mut tcol = vec![0.0; i];
        for (j, tc) in tcol.iter_mut().enumerate() {
            *tc = -tau[i] * v[i + j * ldv];
        }
        if m > i + 1 {
            gemv(
                Trans::Yes,
                m - i - 1,
                i,
                -tau[i],
                &v[i + 1..],
                ldv,
                &v[i + 1 + i * ldv..i + 1 + i * ldv + (m - i - 1)],
                1.0,
                &mut tcol,
            );
        }
        // t(0..i) ← T(0..i,0..i)·t(0..i)
        trmv(UpLo::Upper, Trans::No, Diag::NonUnit, i, t, ldt, &mut tcol);
        for (j, tc) in tcol.iter().enumerate() {
            t[j + i * ldt] = *tc;
        }
        t[i + i * ldt] = tau[i];
    }
}

/// Apply a block reflector `Q = I − V·T·Vᵀ` (forward, columnwise, implicit
/// unit diagonal in `V`) or its transpose to `C` (`dlarfb`).
///
/// * [`Side::Left`]: `C ← op(Q)·C`, `V` is `m×k`;
/// * [`Side::Right`]: `C ← C·op(Q)`, `V` is `n×k`;
///
/// with `op(Q) = Q` for [`Trans::No`] and `Qᵀ` for [`Trans::Yes`]. Note
/// `Qᵀ = I − V·Tᵀ·Vᵀ`.
#[allow(clippy::too_many_arguments)]
pub fn larfb(
    side: Side,
    trans: Trans,
    m: usize,
    n: usize,
    k: usize,
    v: &[f64],
    ldv: usize,
    t: &[f64],
    ldt: usize,
    c: &mut [f64],
    ldc: usize,
) {
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let t_op = trans;
    match side {
        Side::Left => {
            assert!(m >= k, "larfb left: m >= k required");
            // W = Cᵀ·V  (n×k):  W = C₁ᵀ·V₁ + C₂ᵀ·V₂
            let mut w = vec![0.0; n * k];
            // W ← C₁ᵀ  (C₁ = first k rows of C)
            for j in 0..k {
                for i in 0..n {
                    w[i + j * n] = c[j + i * ldc];
                }
            }
            trmm(Side::Right, UpLo::Lower, Trans::No, Diag::Unit, n, k, 1.0, v, ldv, &mut w, n);
            if m > k {
                gemm(Trans::Yes, Trans::No, n, k, m - k, 1.0, &c[k..], ldc, &v[k..], ldv, 1.0, &mut w, n);
            }
            // W ← W·op(T)ᵀ   (left-apply of I − V·T·Vᵀ gives W·Tᵀ; of Qᵀ gives W·T)
            let ttrans = match t_op {
                Trans::No => Trans::Yes,
                Trans::Yes => Trans::No,
            };
            trmm(Side::Right, UpLo::Upper, ttrans, Diag::NonUnit, n, k, 1.0, t, ldt, &mut w, n);
            // C ← C − V·Wᵀ
            if m > k {
                gemm(Trans::No, Trans::Yes, m - k, n, k, -1.0, &v[k..], ldv, &w, n, 1.0, &mut c[k..], ldc);
            }
            // C₁ ← C₁ − V₁·Wᵀ : first W ← W·V₁ᵀ, then subtract transposed.
            trmm(Side::Right, UpLo::Lower, Trans::Yes, Diag::Unit, n, k, 1.0, v, ldv, &mut w, n);
            for j in 0..n {
                for i in 0..k {
                    c[i + j * ldc] -= w[j + i * n];
                }
            }
        }
        Side::Right => {
            assert!(n >= k, "larfb right: n >= k required");
            // W = C·V (m×k)
            let mut w = vec![0.0; m * k];
            for j in 0..k {
                for i in 0..m {
                    w[i + j * m] = c[i + j * ldc];
                }
            }
            trmm(Side::Right, UpLo::Lower, Trans::No, Diag::Unit, m, k, 1.0, v, ldv, &mut w, m);
            if n > k {
                gemm(Trans::No, Trans::No, m, k, n - k, 1.0, &c[k * ldc..], ldc, &v[k..], ldv, 1.0, &mut w, m);
            }
            // W ← W·op(T)  (right-apply of Q gives W·T; of Qᵀ gives W·Tᵀ)
            trmm(Side::Right, UpLo::Upper, t_op, Diag::NonUnit, m, k, 1.0, t, ldt, &mut w, m);
            // C ← C − W·Vᵀ
            if n > k {
                gemm(Trans::No, Trans::Yes, m, n - k, k, -1.0, &w, m, &v[k..], ldv, 1.0, &mut c[k * ldc..], ldc);
            }
            let mut w2 = w;
            trmm(Side::Right, UpLo::Lower, Trans::Yes, Diag::Unit, m, k, 1.0, v, ldv, &mut w2, m);
            for j in 0..k {
                let col = &mut c[j * ldc..j * ldc + m];
                axpy(-1.0, &w2[j * m..j * m + m], col);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_dense::gen::uniform;
    use ft_dense::Matrix;

    /// Materialize H = I − τ·v·vᵀ densely.
    fn dense_reflector(tau: f64, v: &[f64]) -> Matrix {
        let n = v.len();
        Matrix::from_fn(n, n, |i, j| {
            let id = if i == j { 1.0 } else { 0.0 };
            id - tau * v[i] * v[j]
        })
    }

    fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        gemm(
            Trans::No,
            Trans::No,
            a.rows(),
            b.cols(),
            a.cols(),
            1.0,
            a.as_slice(),
            a.rows(),
            b.as_slice(),
            b.rows(),
            0.0,
            c.as_mut_slice(),
            a.rows(),
        );
        c
    }

    #[test]
    fn larfg_annihilates() {
        let mut col = [3.0, 1.0, -2.0, 0.5];
        let (head, tail) = col.split_at_mut(1);
        let tau = larfg(&mut head[0], tail);
        let beta = head[0];
        // v = [1; tail]; H [alpha; x] = [beta; 0]
        let v: Vec<f64> = std::iter::once(1.0).chain(tail.iter().copied()).collect();
        let h = dense_reflector(tau, &v);
        let orig = [3.0, 1.0, -2.0, 0.5];
        let mut out = vec![0.0; 4];
        gemv(Trans::No, 4, 4, 1.0, h.as_slice(), 4, &orig, 0.0, &mut out);
        assert!((out[0] - beta).abs() < 1e-14);
        for &z in &out[1..] {
            assert!(z.abs() < 1e-14, "tail not annihilated: {z}");
        }
        // norm preserved
        let n0 = nrm2(&orig);
        assert!((beta.abs() - n0).abs() < 1e-14);
        // beta has opposite sign of alpha (LAPACK convention)
        assert!(beta < 0.0);
    }

    #[test]
    fn larfg_zero_tail_is_identity() {
        let mut alpha = 2.5;
        let mut x = vec![0.0, 0.0];
        let tau = larfg(&mut alpha, &mut x);
        assert_eq!(tau, 0.0);
        assert_eq!(alpha, 2.5);
    }

    #[test]
    fn reflector_is_orthogonal_and_involutive() {
        let mut col = [1.0, 2.0, 3.0];
        let (head, tail) = col.split_at_mut(1);
        let tau = larfg(&mut head[0], tail);
        let v: Vec<f64> = std::iter::once(1.0).chain(tail.iter().copied()).collect();
        let h = dense_reflector(tau, &v);
        let hh = matmul(&h, &h);
        assert!(hh.max_abs_diff(&Matrix::identity(3)) < 1e-14, "H² ≠ I");
    }

    #[test]
    fn larf_left_right_match_dense() {
        let m = 6;
        let n = 4;
        let c0 = uniform(m, n, 3);
        let mut vl = uniform(m, 1, 4).as_slice().to_vec();
        vl[0] = 1.0;
        let tau = 1.3;

        let mut c = c0.clone();
        larf_left(tau, &vl, m, n, c.as_mut_slice(), m);
        let want = matmul(&dense_reflector(tau, &vl), &c0);
        assert!(c.max_abs_diff(&want) < 1e-13);

        let mut vr = uniform(n, 1, 5).as_slice().to_vec();
        vr[0] = 1.0;
        let mut c = c0.clone();
        larf_right(tau, &vr, m, n, c.as_mut_slice(), m);
        let want = matmul(&c0, &dense_reflector(tau, &vr));
        assert!(c.max_abs_diff(&want) < 1e-13);
    }

    /// Build k reflectors on random data, then check I − V·T·Vᵀ equals the
    /// product H₀·H₁⋯H_{k−1} formed densely.
    fn random_vt(m: usize, k: usize, seed: u64) -> (Matrix, Vec<f64>, Matrix) {
        let mut v = uniform(m, k, seed);
        let mut tau = vec![0.0; k];
        for j in 0..k {
            // enforce unit + zeros convention on the stored V for the dense
            // comparison (larft itself ignores the upper part).
            for i in 0..j {
                v[(i, j)] = 0.0;
            }
            v[(j, j)] = 1.0;
            tau[j] = 0.5 + 0.2 * j as f64;
        }
        let mut t = Matrix::zeros(k, k);
        larft(m, k, v.as_slice(), m, &tau, t.as_mut_slice(), k);
        (v, tau, t)
    }

    fn dense_q(v: &Matrix, tau: &[f64]) -> Matrix {
        let m = v.rows();
        let mut q = Matrix::identity(m);
        for j in 0..tau.len() {
            let vj: Vec<f64> = (0..m).map(|i| v[(i, j)]).collect();
            let h = dense_reflector(tau[j], &vj);
            q = matmul(&q, &h);
        }
        q
    }

    #[test]
    fn larft_reproduces_reflector_product() {
        let (v, tau, t) = random_vt(7, 3, 10);
        let q_dense = dense_q(&v, &tau);
        // Q = I − V·T·Vᵀ
        let mut vt = Matrix::zeros(7, 3);
        gemm(Trans::No, Trans::No, 7, 3, 3, 1.0, v.as_slice(), 7, t.as_slice(), 3, 0.0, vt.as_mut_slice(), 7);
        let mut q = Matrix::identity(7);
        gemm(Trans::No, Trans::Yes, 7, 7, 3, -1.0, vt.as_slice(), 7, v.as_slice(), 7, 1.0, q.as_mut_slice(), 7);
        assert!(q.max_abs_diff(&q_dense) < 1e-13);
    }

    #[test]
    fn larft_zero_tau_column() {
        let m = 5;
        let k = 2;
        let mut v = uniform(m, k, 3);
        for j in 0..k {
            for i in 0..j {
                v[(i, j)] = 0.0;
            }
            v[(j, j)] = 1.0;
        }
        let tau = vec![0.7, 0.0];
        let mut t = Matrix::zeros(k, k);
        larft(m, k, v.as_slice(), m, &tau, t.as_mut_slice(), k);
        assert_eq!(t[(0, 1)], 0.0);
        assert_eq!(t[(1, 1)], 0.0);
        assert_eq!(t[(0, 0)], 0.7);
    }

    #[test]
    fn larfb_all_sides_match_dense() {
        let k = 3;
        for (m, n) in [(8, 5), (5, 8), (4, 4)] {
            for side in [Side::Left, Side::Right] {
                let vdim = match side {
                    Side::Left => m,
                    Side::Right => n,
                };
                if vdim < k {
                    continue;
                }
                let (v, tau, t) = random_vt(vdim, k, 20 + m as u64 + n as u64);
                let q = dense_q(&v, &tau);
                for trans in [Trans::No, Trans::Yes] {
                    let c0 = uniform(m, n, 30);
                    let mut c = c0.clone();
                    larfb(side, trans, m, n, k, v.as_slice(), vdim, t.as_slice(), k, c.as_mut_slice(), m);
                    let qop = match trans {
                        Trans::No => q.clone(),
                        Trans::Yes => q.transposed(),
                    };
                    let want = match side {
                        Side::Left => matmul(&qop, &c0),
                        Side::Right => matmul(&c0, &qop),
                    };
                    let d = c.max_abs_diff(&want);
                    assert!(d < 1e-12, "{side:?} {trans:?} m={m} n={n}: diff {d}");
                }
            }
        }
    }

    #[test]
    fn larfb_ignores_stored_upper_triangle_of_v() {
        // The buffer above the implicit unit diagonal may hold garbage
        // (in gehrd it holds Hessenberg data) — larfb must not read it.
        let m = 6;
        let n = 4;
        let k = 2;
        let (v, tau, t) = random_vt(m, k, 55);
        let q = dense_q(&v, &tau);
        let mut vdirty = v.clone();
        vdirty[(0, 1)] = 1e9; // above unit diagonal of column 1
        let c0 = uniform(m, n, 7);
        let mut c = c0.clone();
        larfb(Side::Left, Trans::Yes, m, n, k, vdirty.as_slice(), m, t.as_slice(), k, c.as_mut_slice(), m);
        let want = matmul(&q.transposed(), &c0);
        assert!(c.max_abs_diff(&want) < 1e-12);
    }
}
