//! Property-based tests of the Householder and Hessenberg machinery:
//! reflector invariants, factorization structure, and spectrum
//! preservation, over randomized sizes and blockings.

use ft_dense::gen::uniform;
use ft_dense::level1::nrm2;
use ft_dense::level2::gemv;
use ft_dense::{Matrix, Trans};
use ft_lapack::householder::{larf_left, larfg};
use ft_lapack::{
    extract_h, gehd2, gehrd, hessenberg_residual, is_hessenberg, orghr, orthogonality_residual,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 30, ..ProptestConfig::default() })]

    /// larfg: annihilation, norm preservation, H² = I.
    #[test]
    fn prop_larfg_reflector(n in 2usize..50, seed in 0u64..1000) {
        let col = uniform(n, 1, seed).as_slice().to_vec();
        let mut work = col.clone();
        let (head, tail) = work.split_at_mut(1);
        let tau = larfg(&mut head[0], tail);
        let beta = head[0];
        let v: Vec<f64> = std::iter::once(1.0).chain(tail.iter().copied()).collect();

        // H·col = [β; 0]: apply via larf_left on the column.
        let mut c = Matrix::from_fn(n, 1, |i, _| col[i]);
        larf_left(tau, &v, n, 1, c.as_mut_slice(), n);
        prop_assert!((c[(0, 0)] - beta).abs() < 1e-11 * nrm2(&col).max(1.0));
        for i in 1..n {
            prop_assert!(c[(i, 0)].abs() < 1e-11 * nrm2(&col).max(1.0), "tail {i} = {}", c[(i, 0)]);
        }
        // Norm preservation.
        prop_assert!((beta.abs() - nrm2(&col)).abs() < 1e-11 * nrm2(&col).max(1.0));
        // Applying H twice is the identity.
        let mut c2 = Matrix::from_fn(n, 1, |i, _| col[i]);
        larf_left(tau, &v, n, 1, c2.as_mut_slice(), n);
        larf_left(tau, &v, n, 1, c2.as_mut_slice(), n);
        for i in 0..n {
            prop_assert!((c2[(i, 0)] - col[i]).abs() < 1e-10 * nrm2(&col).max(1.0));
        }
    }

    /// gehrd for any (n, nb): exact Hessenberg structure, orthogonal Q,
    /// backward-stable residual, and agreement with the unblocked gehd2.
    #[test]
    fn prop_gehrd_valid_factorization(n in 3usize..40, nb in 1usize..12, seed in 0u64..1000) {
        let a0 = uniform(n, n, seed);
        let mut a = a0.clone();
        let mut tau = vec![0.0; n - 1];
        gehrd(&mut a, nb, &mut tau);
        let h = extract_h(&a);
        prop_assert!(is_hessenberg(&h));
        let q = orghr(&a, &tau);
        prop_assert!(orthogonality_residual(&q) < 10.0);
        prop_assert!(hessenberg_residual(&a0, &h, &q) < 10.0);

        let mut a2 = a0.clone();
        let mut tau2 = vec![0.0; n - 1];
        gehd2(&mut a2, &mut tau2);
        prop_assert!(h.max_abs_diff(&extract_h(&a2)) < 1e-9);
    }

    /// The reduction preserves trace and Frobenius norm (similarity by an
    /// orthogonal matrix).
    #[test]
    fn prop_gehrd_preserves_invariants(n in 3usize..35, nb in 2usize..8, seed in 0u64..1000) {
        let a0 = uniform(n, n, seed);
        let mut a = a0.clone();
        let mut tau = vec![0.0; n - 1];
        gehrd(&mut a, nb, &mut tau);
        let h = extract_h(&a);
        let tr_a: f64 = (0..n).map(|i| a0[(i, i)]).sum();
        let tr_h: f64 = (0..n).map(|i| h[(i, i)]).sum();
        prop_assert!((tr_a - tr_h).abs() < 1e-9 * tr_a.abs().max(1.0) * n as f64);
        let fa = ft_dense::norms::fro_norm(&a0);
        let fh = ft_dense::norms::fro_norm(&h);
        prop_assert!((fa - fh).abs() < 1e-9 * fa.max(1.0));
    }

    /// Eigenvector inverse iteration: Hv = λv to rounding for every real
    /// eigenvalue hqr reports.
    #[test]
    fn prop_eigvec_residuals(n in 3usize..20, seed in 0u64..1000) {
        let a0 = uniform(n, n, seed);
        let mut a = a0.clone();
        let mut tau = vec![0.0; n - 1];
        gehrd(&mut a, 4, &mut tau);
        let h = extract_h(&a);
        let eigs = match ft_lapack::hessenberg_eigenvalues(&h) {
            Ok(e) => e,
            Err(_) => return Ok(()), // extremely rare non-convergence: skip
        };
        let hn = ft_dense::norms::inf_norm(&h).max(1.0);
        let mut reals: Vec<f64> = eigs.iter().filter(|e| e.im == 0.0).map(|e| e.re).collect();
        // Inverse iteration needs isolated eigenvalues; skip near-duplicates.
        reals.sort_by(f64::total_cmp);
        let isolated: Vec<f64> = reals
            .iter()
            .copied()
            .filter(|&l| reals.iter().filter(|&&o| (o - l).abs() < 1e-4 * hn).count() == 1)
            .collect();
        for lam in isolated {
            if let Ok(v) = ft_lapack::hessenberg_eigenvector(&h, lam) {
                let mut hv = vec![0.0; n];
                gemv(Trans::No, n, n, 1.0, h.as_slice(), n, &v, 0.0, &mut hv);
                let res: f64 = hv.iter().zip(&v).map(|(x, y)| (x - lam * y).abs()).fold(0.0, f64::max);
                prop_assert!(res < 1e-7 * hn, "λ={lam}: residual {res}");
            }
        }
    }
}
