//! Property tests of the Householder and Hessenberg machinery: reflector
//! invariants, factorization structure, and spectrum preservation, over
//! randomized sizes and blockings.
//!
//! Formerly proptest-based; rewritten as seeded loops over the internal
//! PRNG ([`ft_dense::rng`]) so the suite runs in the dependency-free
//! default build. Each test draws its cases from a fixed-seed stream, so
//! failures reproduce exactly.

use ft_dense::gen::uniform;
use ft_dense::level1::nrm2;
use ft_dense::level2::gemv;
use ft_dense::rng::Xoshiro256;
use ft_dense::{Matrix, Trans};
use ft_lapack::householder::{larf_left, larfg};
use ft_lapack::{extract_h, gehd2, gehrd, hessenberg_residual, is_hessenberg, orghr, orthogonality_residual};

const CASES: usize = 30;

/// larfg: annihilation, norm preservation, H² = I.
#[test]
fn larfg_reflector() {
    let mut rng = Xoshiro256::seed_from_u64(0x1A9A_0001);
    for case in 0..CASES {
        let n = rng.range_usize(2, 50);
        let seed = rng.next_below(1000);
        let col = uniform(n, 1, seed).as_slice().to_vec();
        let mut work = col.clone();
        let (head, tail) = work.split_at_mut(1);
        let tau = larfg(&mut head[0], tail);
        let beta = head[0];
        let v: Vec<f64> = std::iter::once(1.0).chain(tail.iter().copied()).collect();

        // H·col = [β; 0]: apply via larf_left on the column.
        let mut c = Matrix::from_fn(n, 1, |i, _| col[i]);
        larf_left(tau, &v, n, 1, c.as_mut_slice(), n);
        assert!((c[(0, 0)] - beta).abs() < 1e-11 * nrm2(&col).max(1.0), "case {case}");
        for i in 1..n {
            assert!(c[(i, 0)].abs() < 1e-11 * nrm2(&col).max(1.0), "case {case}: tail {i} = {}", c[(i, 0)]);
        }
        // Norm preservation.
        assert!((beta.abs() - nrm2(&col)).abs() < 1e-11 * nrm2(&col).max(1.0), "case {case}");
        // Applying H twice is the identity.
        let mut c2 = Matrix::from_fn(n, 1, |i, _| col[i]);
        larf_left(tau, &v, n, 1, c2.as_mut_slice(), n);
        larf_left(tau, &v, n, 1, c2.as_mut_slice(), n);
        for i in 0..n {
            assert!((c2[(i, 0)] - col[i]).abs() < 1e-10 * nrm2(&col).max(1.0), "case {case}: H² row {i}");
        }
    }
}

/// gehrd for any (n, nb): exact Hessenberg structure, orthogonal Q,
/// backward-stable residual, and agreement with the unblocked gehd2.
#[test]
fn gehrd_valid_factorization() {
    let mut rng = Xoshiro256::seed_from_u64(0x1A9A_0002);
    for case in 0..CASES {
        let n = rng.range_usize(3, 40);
        let nb = rng.range_usize(1, 12);
        let seed = rng.next_below(1000);
        let a0 = uniform(n, n, seed);
        let mut a = a0.clone();
        let mut tau = vec![0.0; n - 1];
        gehrd(&mut a, nb, &mut tau);
        let h = extract_h(&a);
        assert!(is_hessenberg(&h), "case {case}");
        let q = orghr(&a, &tau);
        assert!(orthogonality_residual(&q) < 10.0, "case {case}");
        assert!(hessenberg_residual(&a0, &h, &q) < 10.0, "case {case}");

        let mut a2 = a0.clone();
        let mut tau2 = vec![0.0; n - 1];
        gehd2(&mut a2, &mut tau2);
        assert!(h.max_abs_diff(&extract_h(&a2)) < 1e-9, "case {case}: blocked vs unblocked");
    }
}

/// The reduction preserves trace and Frobenius norm (similarity by an
/// orthogonal matrix).
#[test]
fn gehrd_preserves_invariants() {
    let mut rng = Xoshiro256::seed_from_u64(0x1A9A_0003);
    for case in 0..CASES {
        let n = rng.range_usize(3, 35);
        let nb = rng.range_usize(2, 8);
        let seed = rng.next_below(1000);
        let a0 = uniform(n, n, seed);
        let mut a = a0.clone();
        let mut tau = vec![0.0; n - 1];
        gehrd(&mut a, nb, &mut tau);
        let h = extract_h(&a);
        let tr_a: f64 = (0..n).map(|i| a0[(i, i)]).sum();
        let tr_h: f64 = (0..n).map(|i| h[(i, i)]).sum();
        assert!((tr_a - tr_h).abs() < 1e-9 * tr_a.abs().max(1.0) * n as f64, "case {case}: trace");
        let fa = ft_dense::norms::fro_norm(&a0);
        let fh = ft_dense::norms::fro_norm(&h);
        assert!((fa - fh).abs() < 1e-9 * fa.max(1.0), "case {case}: Frobenius norm");
    }
}

/// Eigenvector inverse iteration: Hv = λv to rounding for every real
/// eigenvalue hqr reports.
#[test]
fn eigvec_residuals() {
    let mut rng = Xoshiro256::seed_from_u64(0x1A9A_0004);
    for case in 0..CASES {
        let n = rng.range_usize(3, 20);
        let seed = rng.next_below(1000);
        let a0 = uniform(n, n, seed);
        let mut a = a0.clone();
        let mut tau = vec![0.0; n - 1];
        gehrd(&mut a, 4, &mut tau);
        let h = extract_h(&a);
        let eigs = match ft_lapack::hessenberg_eigenvalues(&h) {
            Ok(e) => e,
            Err(_) => continue, // extremely rare non-convergence: skip
        };
        let hn = ft_dense::norms::inf_norm(&h).max(1.0);
        let mut reals: Vec<f64> = eigs.iter().filter(|e| e.im == 0.0).map(|e| e.re).collect();
        // Inverse iteration needs isolated eigenvalues; skip near-duplicates.
        reals.sort_by(f64::total_cmp);
        let isolated: Vec<f64> = reals
            .iter()
            .copied()
            .filter(|&l| reals.iter().filter(|&&o| (o - l).abs() < 1e-4 * hn).count() == 1)
            .collect();
        for lam in isolated {
            if let Ok(v) = ft_lapack::hessenberg_eigenvector(&h, lam) {
                let mut hv = vec![0.0; n];
                gemv(Trans::No, n, n, 1.0, h.as_slice(), n, &v, 0.0, &mut hv);
                let res: f64 = hv.iter().zip(&v).map(|(x, y)| (x - lam * y).abs()).fold(0.0, f64::max);
                assert!(res < 1e-7 * hn, "case {case}: λ={lam}: residual {res}");
            }
        }
    }
}
