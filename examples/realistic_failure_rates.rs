//! Realistic failure rates: the paper's §1 motivation replayed in the
//! simulator.
//!
//! Jaguar (224,162 cores) averaged 2.33 failures per day over 537 days of
//! operation — an MTTI of ~10.3 hours for the whole machine. A long-running
//! reduction at that scale *will* see failures. This example compresses the
//! scenario: a Poisson failure process with a machine MTTI chosen so the
//! run expects a handful of failures, driven through both the ABFT
//! reduction and the §2 Checkpoint/Restart baseline on identical schedules.
//!
//! ```text
//! cargo run --release --example realistic_failure_rates
//! ```

use abft_hessenberg::dense::gen::{uniform_entry, uniform_indexed_matrix};
use abft_hessenberg::hess::{cr_pdgehrd, failpoint, ft_pdgehrd, Encoded, Phase, Variant};
use abft_hessenberg::lapack::{extract_h, hessenberg_residual, orghr};
use abft_hessenberg::pblas::{Desc, DistMatrix};
use abft_hessenberg::runtime::{poisson_failures, run_spmd, FaultScript, PlannedFailure};
use std::time::Instant;

fn main() {
    let (p, q) = (2usize, 4usize);
    let n = 384;
    let nb = 16;
    let seed = 537; // Jaguar's days of operation
    let panels = {
        let (mut c, mut k) = (0, 0);
        while k + 2 < n {
            k += nb.min(n - 2 - k);
            c += 1;
        }
        c
    };

    // Expect ~4 failures over the run (a compressed "Jaguar week").
    let expected = 4.0;
    let schedule: Vec<PlannedFailure> = poisson_failures(panels as u64, panels as f64 / expected, p * q, seed)
        .into_iter()
        .map(|f| PlannedFailure {
            victim: f.victim,
            point: failpoint(f.point as usize, Phase::AfterLeftUpdate),
        })
        .collect();
    println!("machine: {p}x{q} grid, N = {n}, {panels} panel iterations");
    println!("Poisson schedule (MTTI = {:.0} panels): {} failures", panels as f64 / expected, schedule.len());
    for f in &schedule {
        println!("  panel {:>3}: rank {} dies", f.point / 4, f.victim);
    }

    // ---- ABFT run ---------------------------------------------------------
    let sched = schedule.clone();
    let t = Instant::now();
    let (result, tau, recoveries) = run_spmd(p, q, FaultScript::new(sched), move |ctx| {
        let mut enc = Encoded::from_global_fn(&ctx, n, nb, |i, j| uniform_entry(seed, i, j));
        let mut tau = vec![0.0; n - 1];
        let rep = ft_pdgehrd(&ctx, &mut enc, Variant::NonDelayed, &mut tau).expect("within the fault model");
        (enc.gather_logical(&ctx, 1), tau, rep.recoveries)
    })
    .into_iter()
    .next()
    .unwrap();
    let t_abft = t.elapsed().as_secs_f64();

    // ---- C/R baseline on the same schedule ---------------------------------
    let sched = schedule.clone();
    let t = Instant::now();
    let (rollbacks, lost) = run_spmd(p, q, FaultScript::new(sched), move |ctx| {
        let mut a = DistMatrix::from_global_fn(&ctx, Desc { m: n, n, nb }, |i, j| uniform_entry(seed, i, j));
        let mut tau = vec![0.0; n - 1];
        let rep = cr_pdgehrd(&ctx, &mut a, 6, &mut tau);
        (rep.rollbacks, rep.lost_panels)
    })
    .into_iter()
    .next()
    .unwrap();
    let t_cr = t.elapsed().as_secs_f64();

    println!("\nABFT (Algorithm 2): {t_abft:.3} s, {recoveries} recoveries, no lost work");
    println!("C/R  (interval 6) : {t_cr:.3} s, {rollbacks} rollbacks, {lost} panel iterations re-executed");

    // Verify the ABFT result end to end.
    let a0 = uniform_indexed_matrix(n, n, seed);
    let r = hessenberg_residual(&a0, &extract_h(&result), &orghr(&result, &tau));
    println!("\nABFT residual r_inf = {r:.4} (threshold 3)");
    assert!(r < 3.0);
    assert_eq!(recoveries, schedule.len());
    println!("PASS: every scheduled failure was absorbed.");
}
