//! PageRank-style eigenvalue analysis on top of the fault-tolerant
//! reduction — the workload class the paper's introduction motivates
//! (eigenvector centrality / PageRank, refs [2, 12, 13, 34]).
//!
//! Pipeline: build the Google matrix `G = α·P + (1−α)/n·𝟙𝟙ᵀ` of a random
//! web graph → reduce to Hessenberg form on a simulated process grid with a
//! failure injected mid-run → Francis QR iteration on `H` for the full
//! spectrum → report the PageRank structure: `λ₁ = 1` and the damping gap
//! `|λ₂| ≤ α`, which governs power-iteration convergence.
//!
//! ```text
//! cargo run --release --example pagerank_eigenvalues
//! ```

use abft_hessenberg::dense::gen::google_matrix;
use abft_hessenberg::hess::{failpoint, ft_pdgehrd, Encoded, Phase, Variant};
use abft_hessenberg::lapack::{extract_h, hessenberg_eigenvalues, hessenberg_eigenvector, orghr};
use abft_hessenberg::runtime::{run_spmd, FaultScript};

fn main() {
    let n = 192;
    let nb = 16;
    let alpha = 0.85;
    let (p, q) = (2usize, 2usize);
    println!("PageRank spectrum via fault-tolerant Hessenberg reduction");
    println!("  web graph: {n} pages, damping α = {alpha}, grid {p}x{q}\n");

    // The Google matrix is built once and shared by value into the SPMD
    // closure; each process extracts only its block-cyclic share.
    let g = google_matrix(n, alpha, 4, 77);

    let script = FaultScript::one(3, failpoint(5, Phase::AfterLeftUpdate));
    let gc = g.clone();
    let results = run_spmd(p, q, script, move |ctx| {
        let mut enc = Encoded::from_global_fn(&ctx, n, nb, |i, j| gc[(i, j)]);
        let mut tau = vec![0.0; n - 1];
        let report = ft_pdgehrd(&ctx, &mut enc, Variant::NonDelayed, &mut tau).expect("within the fault model");
        let h = enc.gather_logical(&ctx, 1);
        (ctx.rank() == 0).then_some((h, tau, report.recoveries))
    });
    let (reduced, tau, recoveries) = results.into_iter().flatten().next().unwrap();
    println!("failures recovered during the reduction: {recoveries}");

    let h = extract_h(&reduced);
    let mut eigs = hessenberg_eigenvalues(&h).expect("QR iteration converged");
    eigs.sort_by(|a, b| b.abs().total_cmp(&a.abs()));

    println!("\ntop of the spectrum (|λ| sorted):");
    for (i, e) in eigs.iter().take(6).enumerate() {
        println!("  λ{} = {:+.6} {:+.6}i   |λ| = {:.6}", i + 1, e.re, e.im, e.abs());
    }

    let l1 = eigs[0];
    let l2 = &eigs[1];
    assert!((l1.re - 1.0).abs() < 1e-8 && l1.im.abs() < 1e-8, "λ₁ must be 1 for a stochastic matrix");
    assert!(l2.abs() <= alpha + 1e-8, "PageRank theory: |λ₂| ≤ α");
    println!("\nλ₁ = 1 (column-stochastic) ✓");
    println!("|λ₂| = {:.4} ≤ α = {alpha} ✓  → power iteration contracts by ≥ {:.4}/step", l2.abs(), l2.abs());
    println!("≈ {:.0} iterations for 1e-9 accuracy", (1e-9f64).ln() / l2.abs().ln());

    // ---- the actual PageRank vector: inverse iteration on H + back
    //      transformation with Q (v_G = Q·v_H), normalized to sum 1 --------
    let h = extract_h(&reduced);
    let vh = hessenberg_eigenvector(&h, 1.0).expect("dominant eigenvector");
    let qm = orghr(&reduced, &tau);
    let mut pr = vec![0.0; n];
    abft_hessenberg::dense::level2::gemv(abft_hessenberg::dense::Trans::No, n, n, 1.0, qm.as_slice(), n, &vh, 0.0, &mut pr);
    let s: f64 = pr.iter().sum();
    for x in pr.iter_mut() {
        *x /= s;
    }
    let mut ranked: Vec<(usize, f64)> = pr.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\ntop-5 pages by PageRank (from the fault-recovered reduction):");
    for (page, score) in ranked.iter().take(5) {
        println!("  page {page:>4}: {score:.6}");
    }
    assert!(pr.iter().all(|&x| x > 0.0), "Perron vector must be positive");
}
