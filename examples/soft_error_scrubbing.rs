//! Silent-data-corruption scrubbing with the weighted checksums — the
//! Huang–Abraham side of ABFT (paper ref. [29]) on top of the same
//! encoding that handles fail-stop failures.
//!
//! A cosmic-ray bit flip silently corrupts matrix entries; the periodic
//! scrub detects the violated checksum group, locates the corrupted
//! process column from the ratio of weighted violations, and rewrites the
//! block from the surviving data — no rollback, no recomputation.
//!
//! ```text
//! cargo run --release --example soft_error_scrubbing
//! ```

use abft_hessenberg::dense::gen::uniform_entry;
use abft_hessenberg::hess::{scrub_groups, Encoded, Redundancy};
use abft_hessenberg::runtime::{run_spmd, FaultScript};

fn main() {
    let n = 128;
    let nb = 8;
    let (p, q) = (2usize, 4usize);
    println!("soft-error scrubbing demo: {n}x{n}, grid {p}x{q}, Dual (weighted) checksums\n");

    run_spmd(p, q, FaultScript::none(), move |ctx| {
        let mut enc = Encoded::with_redundancy(&ctx, n, nb, Redundancy::Dual, |i, j| uniform_entry(99, i, j));
        enc.compute_initial_checksums(&ctx);
        let pristine = enc.gather_logical(&ctx, 1);

        // Corrupt three entries on different processes / groups.
        // One corruption per checksum group (group = 32 columns here).
        let flips = [(5usize, 9usize, 1e3), (40, 49, -2.5), (100, 101, 7.0)];
        for &(r, c, delta) in &flips {
            if enc.a.owns_row(r) && enc.a.owns_col(c) {
                let v = enc.a.get(r, c);
                enc.a.set(r, c, v + delta);
            }
        }

        let groups = 0..enc.groups();
        let findings = scrub_groups(&ctx, &mut enc, groups, 1e-9);
        if ctx.rank() == 0 {
            println!("scrub findings:");
            for f in &findings {
                println!(
                    "  group {:>2}: |violation| = {:>9.3e}, member column index {:?}, corrected: {}",
                    f.group, f.magnitude, f.member_index, f.corrected
                );
            }
        }
        assert_eq!(findings.len(), flips.len());
        assert!(findings.iter().all(|f| f.corrected));

        let healed = enc.gather_logical(&ctx, 3);
        let d = healed.max_abs_diff(&pristine);
        if ctx.rank() == 0 {
            println!("\nmax |healed − pristine| = {d:.3e}");
            assert!(d < 1e-9);
            println!("PASS: all corruptions located and repaired in place.");
        }
    });
}
