//! Sustained resilience: a long reduction surviving a *storm* of failures —
//! one per panel scope, rotating victims, including a simultaneous
//! two-victim event (different process rows, the paper's §1 fault model).
//!
//! After every recovery the protection is re-established ("ready to recover
//! from the next failure", paper §8), which this example stresses.
//!
//! ```text
//! cargo run --release --example failure_storm
//! ```

use abft_hessenberg::dense::gen::{uniform_entry, uniform_indexed_matrix};
use abft_hessenberg::hess::{failpoint, ft_pdgehrd, Encoded, Phase, Variant};
use abft_hessenberg::lapack::{extract_h, hessenberg_residual, orghr};
use abft_hessenberg::runtime::{run_spmd, FaultScript, PlannedFailure};

fn main() {
    let n = 240;
    let nb = 8;
    let (p, q) = (2usize, 3usize);
    let seed = 13;
    let panels = {
        let mut c = 0;
        let mut k = 0;
        while k + 2 < n {
            k += nb.min(n - 2 - k);
            c += 1;
        }
        c
    };

    // One failure per scope (every Q panels), rotating victim and phase;
    // plus one simultaneous double failure (ranks 0 and 5: rows 0 and 1).
    let mut failures = Vec::new();
    let phases = [
        Phase::AfterPanel,
        Phase::AfterRightUpdate,
        Phase::AfterLeftUpdate,
        Phase::BeforePanel,
    ];
    let mut i = 0;
    let mut panel = 1;
    while panel < panels {
        failures.push(PlannedFailure {
            victim: (i * 2 + 1) % (p * q),
            point: failpoint(panel, phases[i % phases.len()]),
        });
        i += 1;
        panel += q;
    }
    failures.push(PlannedFailure { victim: 0, point: failpoint(2, Phase::AfterRightUpdate) });
    failures.push(PlannedFailure { victim: 5, point: failpoint(2, Phase::AfterRightUpdate) });
    let total_victims = failures.len();
    println!("failure storm: {total_victims} scripted process failures over {panels} panels on a {p}x{q} grid\n");

    let results = run_spmd(p, q, FaultScript::new(failures), move |ctx| {
        let mut enc = Encoded::from_global_fn(&ctx, n, nb, |i, j| uniform_entry(seed, i, j));
        let mut tau = vec![0.0; n - 1];
        let report = ft_pdgehrd(&ctx, &mut enc, Variant::NonDelayed, &mut tau);
        let ag = enc.gather_logical(&ctx, 1);
        (ctx.rank() == 0).then_some((ag, tau, report))
    });
    let (ag, tau, report) = results.into_iter().flatten().next().unwrap();

    println!("recovery events : {}", report.recoveries);
    println!("victims         : {:?}", report.victims);
    println!("recovery time   : {:.4} s of {:.4} s total", report.recovery_secs, report.total_secs);
    assert_eq!(report.victims.len(), total_victims);

    let a0 = uniform_indexed_matrix(n, n, seed);
    let h = extract_h(&ag);
    let qm = orghr(&ag, &tau);
    let r = hessenberg_residual(&a0, &h, &qm);
    println!("\nresidual after the storm: r_inf = {r:.4} (threshold 3)");
    assert!(r < 3.0);
    println!("PASS: every failure recovered, factorization intact.");
}
