//! The Section 6 analytic overhead model evaluated at the **paper's own**
//! configurations (N = 6,000..96,000 on 6×6..96×96 grids, NB = 80) — the
//! scales the simulated machine cannot time directly.
//!
//! Prints the loop-exact flop-overhead prediction next to the asymptote and
//! the paper's measured Figure 6(a) penalties, plus the storage model.
//!
//! ```text
//! cargo run --release --example overhead_model
//! ```

use abft_hessenberg::hess::{asymptotic_overhead, flop_model, storage_overhead_elements};

fn main() {
    println!("Section 6 model at the paper's Titan configurations (NB = 80)");
    println!("{:>8} {:>8}  {:>12} {:>12} {:>14}", "grid", "N", "model ov %", "asym 7/5Q %", "paper meas. %");
    // Figure 6(a) x-axis and the measured penalties the paper reports.
    let paper = [
        (6usize, 6_000usize, Some(7.6)),
        (12, 12_000, None),
        (24, 24_000, None),
        (48, 48_000, None),
        (96, 96_000, Some(1.8)),
    ];
    for (g, n, measured) in paper {
        let m = flop_model(n, 80, g);
        let meas = measured.map(|v| format!("{v:.1}")).unwrap_or_else(|| "—".into());
        println!(
            "{:>8} {:>8}  {:>12.2} {:>12.2} {:>14}",
            format!("{g}x{g}"),
            n,
            m.overhead_ratio() * 100.0,
            asymptotic_overhead(g) * 100.0,
            meas
        );
    }
    println!();
    println!("The model counts raw flops of both checksum copies; on Titan the");
    println!("extra work runs as compute-bound GEMM against a memory-bound");
    println!("baseline (the paper notes Hessenberg reaches only a fraction of");
    println!("peak), so the measured wall-clock penalty sits well below the");
    println!("flop ratio. Both measurements share the 1/Q decay — the paper's");
    println!("structural claim.");

    println!("\nStorage overhead model (f64 elements, whole machine)");
    println!("{:>8} {:>8}  {:>16} {:>14}", "grid", "N", "extra elements", "vs matrix %");
    for (g, n, _) in paper {
        let s = storage_overhead_elements(n, 80, g);
        println!("{:>8} {:>8}  {:>16} {:>14.2}", format!("{g}x{g}"), n, s, s as f64 / (n * n) as f64 * 100.0);
    }
}
