//! Cluster-count detection from the random-walk spectrum — the spectral
//! clustering use case of the paper's introduction (ref. [43], von Luxburg).
//!
//! For a graph with `k` well-separated clusters, the column-stochastic walk
//! matrix has `k` eigenvalues near 1 followed by a gap. We plant clusters,
//! run the walk matrix through the fault-tolerant Hessenberg reduction
//! (with a failure injected), extract the spectrum, and recover `k` from
//! the largest eigengap.
//!
//! ```text
//! cargo run --release --example spectral_gap_clustering
//! ```

use abft_hessenberg::dense::gen::clustered_walk_matrix;
use abft_hessenberg::hess::{failpoint, ft_pdgehrd, Encoded, Phase, Variant};
use abft_hessenberg::lapack::{extract_h, hessenberg_eigenvalues};
use abft_hessenberg::runtime::{run_spmd, FaultScript};

fn main() {
    let n = 160;
    let nb = 16;
    let k_true = 4;
    let (p, q) = (2usize, 2usize);
    println!("Spectral cluster counting via fault-tolerant Hessenberg reduction");
    println!("  graph: {n} nodes, {k_true} planted clusters, grid {p}x{q}\n");

    let w = clustered_walk_matrix(n, k_true, 0.65, 0.01, 42);

    let script = FaultScript::one(1, failpoint(4, Phase::AfterPanel));
    let wc = w.clone();
    let results = run_spmd(p, q, script, move |ctx| {
        let mut enc = Encoded::from_global_fn(&ctx, n, nb, |i, j| wc[(i, j)]);
        let mut tau = vec![0.0; n - 1];
        let report = ft_pdgehrd(&ctx, &mut enc, Variant::Delayed, &mut tau).expect("within the fault model");
        let h = enc.gather_logical(&ctx, 1);
        (ctx.rank() == 0).then_some((h, report.recoveries))
    });
    let (reduced, recoveries) = results.into_iter().flatten().next().unwrap();
    println!("failures recovered during the reduction: {recoveries} (Algorithm 3 / delayed)");

    let eigs = hessenberg_eigenvalues(&extract_h(&reduced)).expect("QR iteration converged");
    let mut mags: Vec<f64> = eigs.iter().map(|e| e.abs()).collect();
    mags.sort_by(|a, b| b.total_cmp(a));

    println!("\nlargest |λ|:");
    for (i, m) in mags.iter().take(8).enumerate() {
        println!("  |λ{}| = {m:.5}", i + 1);
    }

    // Largest relative gap among the top candidates estimates k.
    let (mut k_est, mut best_gap) = (1, 0.0f64);
    for i in 0..mags.len().min(12) - 1 {
        let gap = mags[i] - mags[i + 1];
        if gap > best_gap {
            best_gap = gap;
            k_est = i + 1;
        }
    }
    println!("\nlargest spectral gap after |λ{k_est}| (gap = {best_gap:.4})");
    assert_eq!(k_est, k_true, "cluster count misdetected");
    println!("detected clusters: {k_est} — matches the planted structure ✓");
}
