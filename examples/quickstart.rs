//! Quickstart: fault-tolerant Hessenberg reduction end to end.
//!
//! Reduces a random 256×256 matrix on a simulated 2×3 process grid while a
//! scripted fail-stop failure kills process 4 in the middle of the
//! factorization. The run recovers transparently and the result is verified
//! against the paper's residual criterion `r∞ < 3` (§7.3).
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use abft_hessenberg::dense::gen::{uniform_entry, uniform_indexed_matrix};
use abft_hessenberg::hess::{failpoint, ft_pdgehrd, Encoded, Phase, Variant};
use abft_hessenberg::lapack::{extract_h, hessenberg_residual, is_hessenberg, orghr};
use abft_hessenberg::runtime::{run_spmd, FaultScript};

fn main() {
    let (p, q) = (2usize, 3usize);
    let n = 256;
    let nb = 16;
    let seed = 2013; // SC'13
    println!("ABFT Hessenberg reduction quickstart");
    println!("  matrix: {n}x{n}, blocking nb={nb}, process grid {p}x{q}");

    // Kill rank 4 right after the right update of panel iteration 7.
    let script = FaultScript::one(4, failpoint(7, Phase::AfterRightUpdate));
    println!("  scripted failure: rank 4 dies at panel 7, AfterRightUpdate\n");

    let results = run_spmd(p, q, script, move |ctx| {
        // Every process generates only its own block-cyclic share.
        let mut enc = Encoded::from_global_fn(&ctx, n, nb, |i, j| uniform_entry(seed, i, j));
        let mut tau = vec![0.0; n - 1];
        let report = ft_pdgehrd(&ctx, &mut enc, Variant::NonDelayed, &mut tau).expect("within the fault model");

        // Collect the reduced matrix for verification (demo-sized problem).
        let a_reduced = enc.gather_logical(&ctx, 1);
        (ctx.rank() == 0).then_some((a_reduced, tau, report))
    });

    let (a_reduced, tau, report) = results.into_iter().flatten().next().unwrap();
    println!("recoveries performed : {}", report.recoveries);
    println!("victims recovered    : {:?}", report.victims);
    println!("recovery time        : {:.4} s", report.recovery_secs);
    println!("total reduction time : {:.4} s", report.total_secs);

    // Verify: H is exactly Hessenberg, Q orthogonal, A = Q·H·Qᵀ.
    let a0 = uniform_indexed_matrix(n, n, seed);
    let h = extract_h(&a_reduced);
    let qm = orghr(&a_reduced, &tau);
    assert!(is_hessenberg(&h), "result is not Hessenberg");
    let r = hessenberg_residual(&a0, &h, &qm);
    println!("\nresidual r_inf = ‖A−QHQᵀ‖∞/(‖A‖∞·N·ε) = {r:.4}  (threshold r_t = 3)");
    assert!(r < 3.0);
    println!("PASS: the factorization survived the failure.");
}
